package core

import (
	"context"
	"fmt"
	"time"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/cover"
	"zac/internal/faultinject"
	"zac/internal/fidelity"
	"zac/internal/place"
	"zac/internal/schedule"
	"zac/internal/telemetry"
)

// PassTiming records one executed pipeline pass: its name, its wall-clock
// duration, and whether its artifact was served from a pass-level cache
// instead of being computed.
type PassTiming struct {
	Pass     string        `json:"pass"`
	Duration time.Duration `json:"duration_ns"`
	Cached   bool          `json:"cached,omitempty"`
}

// PassState is the mutable compilation state threaded through one pipeline
// run. Each pass reads the fields earlier passes populated and fills in its
// own; the emit pass assembles Result from them.
type PassState struct {
	Arch   *arch.Architecture
	Staged *circuit.Staged
	Opts   Options
	Hooks  Hooks

	Plan   *place.Plan
	Sched  *schedule.Result
	Result *Result

	start  time.Time
	cached bool
}

// MarkCached flags the currently executing pass as served from a cache; the
// pipeline records it in the pass timing and resets the flag between passes.
func (st *PassState) MarkCached() { st.cached = true }

// MemoPlanFunc wraps the place pass with pass-granular memoization: an
// implementation may return a previously computed plan for the same
// (circuit, architecture, options) triple, or invoke compute — passing the
// context through so cancellation reaches the placement kernel — and share
// the result with concurrent and future callers. The bool reports a cache
// hit.
type MemoPlanFunc func(ctx context.Context, compute func(context.Context) (*place.Plan, error)) (*place.Plan, bool, error)

// Hooks customizes pass execution without changing the pass chain. The zero
// value computes everything in place.
type Hooks struct {
	// MemoPlan, when non-nil, memoizes the place pass (see MemoPlanFunc).
	MemoPlan MemoPlanFunc
}

// Pass is one named stage of the compilation pipeline.
type Pass struct {
	Name string
	Run  func(ctx context.Context, st *PassState) error
}

// Pipeline is an ordered chain of named passes over a shared PassState,
// instrumented with per-pass wall-clock timings and cancellable between
// passes (and, through BuildPlan and schedule.Build, within the expensive
// ones).
type Pipeline struct {
	passes []Pass
}

// NewPipeline builds a pipeline from the given passes, run in order.
func NewPipeline(passes ...Pass) *Pipeline { return &Pipeline{passes: passes} }

// Standard returns ZAC's pass chain (paper §IV):
// validate → place → schedule → emit → fidelity.
func Standard() *Pipeline {
	return NewPipeline(ValidatePass(), PlacePass(), SchedulePass(), EmitPass(), FidelityPass())
}

// ValidatePass checks the architecture and the staged circuit before any
// expensive work.
func ValidatePass() Pass {
	return Pass{Name: "validate", Run: func(ctx context.Context, st *PassState) error {
		if err := st.Arch.Validate(); err != nil {
			return err
		}
		return st.Staged.Validate()
	}}
}

// PlacePass runs reuse-aware placement (§V), optionally through the
// MemoPlan hook so the plan artifact is computed once and shared.
func PlacePass() Pass {
	return Pass{Name: "place", Run: func(ctx context.Context, st *PassState) error {
		build := func(ctx context.Context) (*place.Plan, error) {
			return place.BuildPlan(ctx, st.Arch, st.Staged, st.Opts.Place)
		}
		if st.Hooks.MemoPlan != nil {
			plan, cached, err := st.Hooks.MemoPlan(ctx, build)
			if err != nil {
				return err
			}
			if cached {
				st.MarkCached()
			}
			st.Plan = plan
			return nil
		}
		plan, err := build(ctx)
		if err != nil {
			return err
		}
		st.Plan = plan
		return nil
	}}
}

// SchedulePass runs load-balancing scheduling (§VI), turning the plan into
// a timed ZAIR program. It shares the placement pass's worker budget
// (Options.Place.Workers) so one compile never exceeds its allowance.
func SchedulePass() Pass {
	return Pass{Name: "schedule", Run: func(ctx context.Context, st *PassState) error {
		sched, err := schedule.BuildWithOptions(ctx, st.Arch, st.Staged, st.Plan,
			schedule.Options{Workers: st.Opts.Place.Workers})
		if err != nil {
			return err
		}
		st.Sched = sched
		return nil
	}}
}

// EmitPass assembles the Result from the plan and schedule. CompileTime is
// stamped here, so it covers validation, placement and scheduling but not
// the fidelity evaluation — the same span the pre-pipeline compiler
// measured.
func EmitPass() Pass {
	return Pass{Name: "emit", Run: func(ctx context.Context, st *PassState) error {
		st.Result = &Result{
			Program:          st.Sched.Program,
			Plan:             st.Plan,
			Staged:           st.Staged,
			Stats:            st.Sched.Stats,
			Duration:         st.Sched.Stats.Duration,
			CompileTime:      time.Since(st.start),
			NumRydbergStages: st.Staged.NumRydbergStages(),
			NumJobs:          st.Sched.NumJobs,
			ReusedGates:      st.Plan.TotalReused(),
			TotalMoves:       st.Plan.TotalMoves(),
		}
		return nil
	}}
}

// FidelityPass evaluates the compiled program under the paper's fidelity
// model (§VII-B).
func FidelityPass() Pass {
	return Pass{Name: "fidelity", Run: func(ctx context.Context, st *PassState) error {
		st.Result.Breakdown = fidelity.Compute(ParamsFromArch(st.Arch), st.Result.Stats)
		return nil
	}}
}

// Run executes the pipeline over an already-preprocessed staged circuit and
// returns the compiled Result with one PassTiming per pass. The context is
// checked between passes and plumbed into placement and scheduling, so an
// abandoned compilation stops mid-pass instead of running to completion.
// Pass boundaries additionally consult a context-carried fault-injection
// plan (internal/faultinject) at points "pass.<name>", so the chaos suite
// can delay or fail compilations at any stage seam; compilations without a
// plan pay one nil check per pass. When the context carries a telemetry
// trace (internal/telemetry), each pass records a "pass.<name>" span.
func (p *Pipeline) Run(ctx context.Context, staged *circuit.Staged, a *arch.Architecture, opts Options, hooks Hooks) (*Result, error) {
	st := &PassState{Arch: a, Staged: staged, Opts: opts, Hooks: hooks, start: time.Now()}
	cov := cover.From(ctx)
	fip := faultinject.From(ctx)
	timings := make([]PassTiming, 0, len(p.passes))
	for _, pass := range p.passes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := fip.Boundary(ctx, "pass."+pass.Name); err != nil {
			return nil, fmt.Errorf("%s pass: %w", pass.Name, err)
		}
		st.cached = false
		passCtx, span := telemetry.Start(ctx, "pass."+pass.Name)
		t0 := time.Now()
		if err := pass.Run(passCtx, st); err != nil {
			span.End()
			return nil, fmt.Errorf("%s pass: %w", pass.Name, err)
		}
		if st.cached {
			span.Set("cached", "true")
		}
		span.End()
		if cov != nil {
			cov.Hit("pass:" + pass.Name)
			if st.cached {
				cov.Hit("pass:" + pass.Name + ":cached")
			}
		}
		timings = append(timings, PassTiming{Pass: pass.Name, Duration: time.Since(t0), Cached: st.cached})
	}
	if st.Result == nil {
		return nil, fmt.Errorf("core: pipeline has no emit pass")
	}
	st.Result.Passes = timings
	return st.Result, nil
}
