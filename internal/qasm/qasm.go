// Package qasm implements a parser and writer for the OpenQASM 2.0 subset
// that QASMBench programs use: qreg/creg declarations, the standard gate
// vocabulary (with qelib1.inc treated as built-in), measure and barrier.
// Gate parameters support the arithmetic QASMBench emits: numbers, pi,
// + - * / and unary minus, and parentheses.
package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"zac/internal/circuit"
)

// Parse parses OpenQASM 2.0 source into a circuit. Multiple qregs are
// concatenated into one qubit index space in declaration order. Classical
// registers are accepted and ignored except as measure targets. Errors carry
// the line:column position of the offending statement; malformed or
// truncated input is always reported as an error, never a panic (guarded by
// the FuzzParse corpus in qasm_test.go).
func Parse(src string) (*circuit.Circuit, error) {
	p := &parser{src: src}
	return p.parse()
}

type parser struct {
	src string

	regs    map[string]regInfo
	nQubits int
	out     *circuit.Circuit
}

type regInfo struct {
	offset, size int
}

var gateKinds = map[string]circuit.Kind{
	"u3": circuit.U3, "u": circuit.U3, "u2": circuit.U2, "u1": circuit.U1,
	"p": circuit.U1, "id": circuit.ID, "h": circuit.H, "x": circuit.X,
	"y": circuit.Y, "z": circuit.Z, "s": circuit.S, "sdg": circuit.Sdg,
	"t": circuit.T, "tdg": circuit.Tdg, "rx": circuit.RX, "ry": circuit.RY,
	"rz": circuit.RZ, "cx": circuit.CX, "cy": circuit.CY, "cz": circuit.CZ,
	"swap": circuit.SWAP, "ccx": circuit.CCX, "ccz": circuit.CCZ,
	"cswap": circuit.CSWAP, "cp": circuit.CP, "cu1": circuit.CP,
	"crx": circuit.CRX, "cry": circuit.CRY, "crz": circuit.CRZ,
	"rzz": circuit.RZZ, "rxx": circuit.RXX,
}

func (p *parser) parse() (*circuit.Circuit, error) {
	p.regs = map[string]regInfo{}
	p.out = circuit.New("qasm", 1)

	for _, stmt := range splitStatements(p.src) {
		if err := p.statement(stmt.text); err != nil {
			return nil, fmt.Errorf("qasm: line %d:%d: %q: %w", stmt.line, stmt.col, stmt.text, err)
		}
	}
	if p.nQubits == 0 {
		return nil, fmt.Errorf("qasm: no qreg declared")
	}
	p.out.NumQubits = p.nQubits
	if err := p.out.Validate(); err != nil {
		return nil, err
	}
	return p.out, nil
}

// stmtTok is one ';'-terminated statement with the source position of its
// first non-space character.
type stmtTok struct {
	text      string
	line, col int
}

// splitStatements splits source into ';'-terminated statements, stripping
// // comments and tracking the 1-based line:column where each statement
// starts. A trailing statement without ';' is kept (matching the historical
// parser), so truncated input still reports a positioned error rather than
// being silently dropped.
func splitStatements(src string) []stmtTok {
	var out []stmtTok
	var cur strings.Builder
	line, col := 1, 1
	curLine, curCol := 0, 0
	flush := func() {
		if text := strings.TrimSpace(cur.String()); text != "" {
			out = append(out, stmtTok{text: text, line: curLine, col: curCol})
		}
		cur.Reset()
		curLine, curCol = 0, 0
	}
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c == '/' && i+1 < len(src) && src[i+1] == '/' {
			for i < len(src) && src[i] != '\n' {
				i++
			}
			cur.WriteByte(' ') // comments separate tokens, like the newline they replace
			line++
			col = 1
			continue
		}
		if c == ';' {
			flush()
			col++
			continue
		}
		if curLine == 0 && c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			curLine, curCol = line, col
		}
		cur.WriteByte(c)
		if c == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	flush()
	return out
}

func (p *parser) statement(stmt string) error {
	switch {
	case strings.HasPrefix(stmt, "OPENQASM"), strings.HasPrefix(stmt, "include"):
		return nil
	case strings.HasPrefix(stmt, "qreg"):
		return p.declare(stmt[len("qreg"):])
	case strings.HasPrefix(stmt, "creg"):
		return nil // classical registers are ignored
	case strings.HasPrefix(stmt, "barrier"):
		// Barriers guard all qubits in our model.
		p.out.Gates = append(p.out.Gates, circuit.Gate{Kind: circuit.Barrier, Qubits: []int{0}})
		return nil
	case strings.HasPrefix(stmt, "measure"):
		rest := strings.TrimSpace(stmt[len("measure"):])
		// measure q[i] -> c[i]; or measure q -> c;
		parts := strings.SplitN(rest, "->", 2)
		qubits, err := p.operand(strings.TrimSpace(parts[0]))
		if err != nil {
			return err
		}
		for _, q := range qubits {
			p.out.Gates = append(p.out.Gates, circuit.Gate{Kind: circuit.Measure, Qubits: []int{q}})
		}
		return nil
	}
	return p.gate(stmt)
}

func (p *parser) declare(rest string) error {
	rest = strings.TrimSpace(rest)
	name, size, err := splitIndexed(rest)
	if err != nil {
		return err
	}
	if size <= 0 {
		return fmt.Errorf("qreg %s has size %d", name, size)
	}
	if _, dup := p.regs[name]; dup {
		return fmt.Errorf("duplicate qreg %s", name)
	}
	p.regs[name] = regInfo{offset: p.nQubits, size: size}
	p.nQubits += size
	return nil
}

// splitIndexed parses "name[k]" returning (name, k).
func splitIndexed(s string) (string, int, error) {
	open := strings.IndexByte(s, '[')
	close := strings.IndexByte(s, ']')
	if open < 0 || close < open {
		return "", 0, fmt.Errorf("malformed indexed name %q", s)
	}
	n, err := strconv.Atoi(strings.TrimSpace(s[open+1 : close]))
	if err != nil {
		return "", 0, err
	}
	return strings.TrimSpace(s[:open]), n, nil
}

// operand resolves "q[3]" to one qubit or "q" to the whole register.
func (p *parser) operand(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if strings.ContainsRune(s, '[') {
		name, idx, err := splitIndexed(s)
		if err != nil {
			return nil, err
		}
		reg, ok := p.regs[name]
		if !ok {
			return nil, fmt.Errorf("unknown qreg %q", name)
		}
		if idx < 0 || idx >= reg.size {
			return nil, fmt.Errorf("index %d out of range for qreg %s[%d]", idx, name, reg.size)
		}
		return []int{reg.offset + idx}, nil
	}
	reg, ok := p.regs[s]
	if !ok {
		return nil, fmt.Errorf("unknown qreg %q", s)
	}
	qs := make([]int, reg.size)
	for i := range qs {
		qs[i] = reg.offset + i
	}
	return qs, nil
}

func (p *parser) gate(stmt string) error {
	// name(params)? operand(,operand)*
	head := stmt
	var params []float64
	if i := strings.IndexByte(stmt, '('); i >= 0 {
		depth := 0
		end := -1
		for j := i; j < len(stmt); j++ {
			switch stmt[j] {
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 {
					end = j
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unbalanced parentheses")
		}
		var err error
		params, err = parseParams(stmt[i+1 : end])
		if err != nil {
			return err
		}
		head = stmt[:i] + " " + stmt[end+1:]
	}
	fields := strings.Fields(head)
	if len(fields) < 2 {
		return fmt.Errorf("malformed gate statement")
	}
	name := fields[0]
	kind, ok := gateKinds[name]
	if !ok {
		return fmt.Errorf("unsupported gate %q", name)
	}
	// Validate the parameter count up front: every path below constructs
	// gates, and circuit.NewGate treats a mismatch as a programming error
	// (panic), which malformed input must never reach.
	if len(params) != kind.NumParams() {
		return fmt.Errorf("%s expects %d params, got %d", name, kind.NumParams(), len(params))
	}
	operandSrc := strings.Join(fields[1:], "")
	var operands [][]int
	for _, o := range strings.Split(operandSrc, ",") {
		qs, err := p.operand(o)
		if err != nil {
			return err
		}
		operands = append(operands, qs)
	}
	if len(operands) != kind.NumQubits() {
		// Whole-register broadcast for 1Q gates: h q;
		if kind.NumQubits() == 1 && len(operands) == 1 {
			for _, q := range operands[0] {
				p.out.Append(kind, []int{q}, params...)
			}
			return nil
		}
		return fmt.Errorf("%s expects %d operands, got %d", name, kind.NumQubits(), len(operands))
	}
	// Broadcast: all single-qubit or all same-length registers.
	width := 1
	for _, o := range operands {
		if len(o) > width {
			width = len(o)
		}
	}
	for w := 0; w < width; w++ {
		qs := make([]int, len(operands))
		seen := map[int]bool{}
		for k, o := range operands {
			if len(o) == 1 {
				qs[k] = o[0]
			} else if w < len(o) {
				qs[k] = o[w]
			} else {
				return fmt.Errorf("register length mismatch in %s", name)
			}
			if seen[qs[k]] {
				return fmt.Errorf("%s uses qubit %d twice", name, qs[k])
			}
			seen[qs[k]] = true
		}
		p.out.Append(kind, qs, params...)
	}
	return nil
}

func parseParams(s string) ([]float64, error) {
	var out []float64
	depth := 0
	start := 0
	flush := func(end int) error {
		expr := strings.TrimSpace(s[start:end])
		if expr == "" {
			return fmt.Errorf("empty parameter")
		}
		v, err := evalExpr(expr)
		if err != nil {
			return err
		}
		out = append(out, v)
		return nil
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if err := flush(len(s)); err != nil {
		return nil, err
	}
	return out, nil
}

// evalExpr evaluates the small arithmetic grammar of QASM parameters:
// expr := term (('+'|'-') term)*; term := unary (('*'|'/') unary)*;
// unary := '-' unary | atom; atom := number | 'pi' | '(' expr ')'.
func evalExpr(s string) (float64, error) {
	e := &exprParser{s: s}
	v, err := e.expr()
	if err != nil {
		return 0, err
	}
	e.skipSpace()
	if e.pos != len(e.s) {
		return 0, fmt.Errorf("trailing input in expression %q", s)
	}
	return v, nil
}

type exprParser struct {
	s   string
	pos int
}

func (e *exprParser) skipSpace() {
	for e.pos < len(e.s) && (e.s[e.pos] == ' ' || e.s[e.pos] == '\t' || e.s[e.pos] == '\n') {
		e.pos++
	}
}

func (e *exprParser) peek() byte {
	e.skipSpace()
	if e.pos >= len(e.s) {
		return 0
	}
	return e.s[e.pos]
}

func (e *exprParser) expr() (float64, error) {
	v, err := e.term()
	if err != nil {
		return 0, err
	}
	for {
		switch e.peek() {
		case '+':
			e.pos++
			t, err := e.term()
			if err != nil {
				return 0, err
			}
			v += t
		case '-':
			e.pos++
			t, err := e.term()
			if err != nil {
				return 0, err
			}
			v -= t
		default:
			return v, nil
		}
	}
}

func (e *exprParser) term() (float64, error) {
	v, err := e.unary()
	if err != nil {
		return 0, err
	}
	for {
		switch e.peek() {
		case '*':
			e.pos++
			u, err := e.unary()
			if err != nil {
				return 0, err
			}
			v *= u
		case '/':
			e.pos++
			u, err := e.unary()
			if err != nil {
				return 0, err
			}
			if u == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			v /= u
		default:
			return v, nil
		}
	}
}

func (e *exprParser) unary() (float64, error) {
	if e.peek() == '-' {
		e.pos++
		v, err := e.unary()
		return -v, err
	}
	return e.atom()
}

func (e *exprParser) atom() (float64, error) {
	e.skipSpace()
	if e.pos >= len(e.s) {
		return 0, fmt.Errorf("unexpected end of expression")
	}
	if e.s[e.pos] == '(' {
		e.pos++
		v, err := e.expr()
		if err != nil {
			return 0, err
		}
		if e.peek() != ')' {
			return 0, fmt.Errorf("missing ')'")
		}
		e.pos++
		return v, nil
	}
	start := e.pos
	for e.pos < len(e.s) {
		c := e.s[e.pos]
		if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' ||
			(c == '+' || c == '-') && e.pos > start && (e.s[e.pos-1] == 'e' || e.s[e.pos-1] == 'E') ||
			c >= 'a' && c <= 'z' {
			e.pos++
			continue
		}
		break
	}
	tok := e.s[start:e.pos]
	if tok == "pi" {
		return math.Pi, nil
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("bad token %q", tok)
	}
	return v, nil
}

// Write renders a circuit as OpenQASM 2.0 using a single register q.
func Write(c *circuit.Circuit) string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	for _, g := range c.Gates {
		switch g.Kind {
		case circuit.Barrier:
			b.WriteString("barrier q;\n")
			continue
		case circuit.Measure:
			fmt.Fprintf(&b, "// measure q[%d]\n", g.Qubits[0])
			continue
		}
		b.WriteString(g.Kind.String())
		if len(g.Params) > 0 {
			b.WriteByte('(')
			for i, p := range g.Params {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%.12g", p)
			}
			b.WriteByte(')')
		}
		b.WriteByte(' ')
		for i, q := range g.Qubits {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "q[%d]", q)
		}
		b.WriteString(";\n")
	}
	return b.String()
}
