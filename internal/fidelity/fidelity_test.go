package fidelity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComputeKnownValues(t *testing.T) {
	p := NeutralAtom()
	s := Stats{
		OneQGates: 2,
		TwoQGates: 3,
		Excited:   4,
		Transfers: 10,
		Duration:  1000,
		Busy:      []float64{1000, 500},
	}
	b := Compute(p, s)
	if got, want := b.OneQ, math.Pow(0.9997, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("OneQ = %v, want %v", got, want)
	}
	if got, want := b.TwoQ, math.Pow(0.995, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("TwoQ = %v, want %v", got, want)
	}
	if got, want := b.Excite, math.Pow(0.9975, 4); math.Abs(got-want) > 1e-12 {
		t.Errorf("Excite = %v, want %v", got, want)
	}
	if got, want := b.Transfer, math.Pow(0.999, 10); math.Abs(got-want) > 1e-12 {
		t.Errorf("Transfer = %v, want %v", got, want)
	}
	// Qubit 0 fully busy (no decoherence), qubit 1 idles 500µs of T2=1.5e6.
	if got, want := b.Decohere, 1-500/1.5e6; math.Abs(got-want) > 1e-12 {
		t.Errorf("Decohere = %v, want %v", got, want)
	}
	want := b.OneQ * b.TwoQ * b.Excite * b.Transfer * b.Decohere
	if math.Abs(b.Total-want) > 1e-12 {
		t.Errorf("Total = %v, want product %v", b.Total, want)
	}
	if math.Abs(b.TwoQCombined()-b.TwoQ*b.Excite) > 1e-15 {
		t.Error("TwoQCombined mismatch")
	}
}

func TestComputeEmptyIsPerfect(t *testing.T) {
	b := Compute(NeutralAtom(), Stats{})
	if b.Total != 1 {
		t.Errorf("empty stats fidelity = %v, want 1", b.Total)
	}
}

func TestDecoherenceClamps(t *testing.T) {
	p := NeutralAtom()
	// Idle longer than T2 → decoherence term clamps at 0, not negative.
	s := Stats{Duration: 2 * p.T2, Busy: []float64{0}}
	b := Compute(p, s)
	if b.Decohere != 0 || b.Total != 0 {
		t.Errorf("over-idle should clamp to zero: %v", b.Decohere)
	}
	// Busy beyond duration → idle clamps at 0.
	s2 := Stats{Duration: 10, Busy: []float64{20}}
	if got := Compute(p, s2).Decohere; got != 1 {
		t.Errorf("negative idle should clamp: %v", got)
	}
}

func TestFidelityBoundsProperty(t *testing.T) {
	p := NeutralAtom()
	f := func(g1, g2, exc, tran uint8, durRaw uint16) bool {
		s := Stats{
			OneQGates: int(g1), TwoQGates: int(g2),
			Excited: int(exc), Transfers: int(tran),
			Duration: float64(durRaw),
			Busy:     []float64{0, float64(durRaw) / 2},
		}
		b := Compute(p, s)
		ok := b.Total >= 0 && b.Total <= 1
		for _, v := range []float64{b.OneQ, b.TwoQ, b.Excite, b.Transfer, b.Decohere} {
			ok = ok && v >= 0 && v <= 1
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoreErrorsLowerFidelity(t *testing.T) {
	p := NeutralAtom()
	base := Stats{TwoQGates: 10, Duration: 100, Busy: []float64{50}}
	fBase := Compute(p, base).Total
	worse := base
	worse.TwoQGates = 20
	if Compute(p, worse).Total >= fBase {
		t.Error("more 2Q gates must lower fidelity")
	}
	worse2 := base
	worse2.Excited = 5
	if Compute(p, worse2).Total >= fBase {
		t.Error("excitations must lower fidelity")
	}
	worse3 := base
	worse3.Duration = 10000
	if Compute(p, worse3).Total >= fBase {
		t.Error("longer idling must lower fidelity")
	}
}

func TestAddBusyGrows(t *testing.T) {
	var s Stats
	s.AddBusy(3, 5)
	s.AddBusy(3, 2)
	s.AddBusy(0, 1)
	if len(s.Busy) != 4 || s.Busy[3] != 7 || s.Busy[0] != 1 {
		t.Errorf("Busy = %v", s.Busy)
	}
}

func TestMerge(t *testing.T) {
	a := Stats{OneQGates: 1, TwoQGates: 2, Duration: 10, Busy: []float64{1}}
	b := Stats{OneQGates: 3, Excited: 4, Transfers: 5, Duration: 7, Busy: []float64{2, 3}}
	a.Merge(b)
	if a.OneQGates != 4 || a.TwoQGates != 2 || a.Excited != 4 || a.Transfers != 5 {
		t.Errorf("counts: %+v", a)
	}
	if a.Duration != 10 {
		t.Errorf("duration should take max: %v", a.Duration)
	}
	if a.Busy[0] != 3 || a.Busy[1] != 3 {
		t.Errorf("busy: %v", a.Busy)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{4, 1}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("empty GeoMean = %v", g)
	}
	if g := GeoMean([]float64{0.5}); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("single GeoMean = %v", g)
	}
	// Zero values are floored, not fatal.
	if g := GeoMean([]float64{0, 1}); g <= 0 {
		t.Errorf("zero-containing GeoMean = %v", g)
	}
}

func TestPlatformParams(t *testing.T) {
	na := NeutralAtom()
	if na.F2 != 0.995 || na.T1Q != 52 || na.T2 != 1.5e6 {
		t.Errorf("neutral atom params wrong: %+v", na)
	}
	h := SCHeron()
	if h.F2 != 0.999 || h.T2 != 311 || h.T2Q != 0.068 {
		t.Errorf("heron params wrong: %+v", h)
	}
	g := SCGrid()
	if g.T2 != 89 || g.T2Q != 0.042 {
		t.Errorf("grid params wrong: %+v", g)
	}
}
