package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilPlanIsSafe(t *testing.T) {
	var p *Plan
	if r := p.Decide("fs.readfile"); r != nil {
		t.Fatalf("nil plan fired a rule: %+v", r)
	}
	if err := p.Boundary(context.Background(), "pass.place"); err != nil {
		t.Fatalf("nil plan boundary error: %v", err)
	}
	if st := p.Stats("fs.readfile"); st != (PointStats{}) {
		t.Fatalf("nil plan stats = %+v", st)
	}
	if n := p.Fired("fs."); n != 0 {
		t.Fatalf("nil plan fired = %d", n)
	}
	if got := From(context.Background()); got != nil {
		t.Fatalf("From(empty ctx) = %v, want nil", got)
	}
}

func TestContextCarrier(t *testing.T) {
	p := NewPlan(1)
	ctx := With(context.Background(), p)
	if got := From(ctx); got != p {
		t.Fatalf("From(With(ctx, p)) = %v, want %v", got, p)
	}
}

// TestDeterministicSchedule pins the core reproducibility contract: the same
// seed yields the same per-point fault schedule, hit for hit.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		p := NewPlan(seed, Rule{Point: "fs.write", Prob: 0.3, Kind: KindError})
		fired := make([]bool, 200)
		for i := range fired {
			fired[i] = p.Decide("fs.write") != nil
		}
		return fired
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: same seed diverged (%v vs %v)", i+1, a[i], b[i])
		}
	}
	var n int
	for _, f := range a {
		if f {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Fatalf("prob 0.3 fired %d/%d times; stream looks degenerate", n, len(a))
	}
}

// TestPointStreamsIndependent checks that hits on one point do not perturb
// another point's schedule — the property that makes concurrent chaos runs
// reproducible per point.
func TestPointStreamsIndependent(t *testing.T) {
	solo := NewPlan(7, Rule{Point: "a", Prob: 0.5, Kind: KindError})
	mixed := NewPlan(7, Rule{Point: "a", Prob: 0.5, Kind: KindError})
	var want, got []bool
	for i := 0; i < 100; i++ {
		want = append(want, solo.Decide("a") != nil)
		mixed.Decide("b") // interleaved traffic on another point
		got = append(got, mixed.Decide("a") != nil)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("hit %d: point stream perturbed by traffic on another point", i+1)
		}
	}
}

func TestHitsOrdinals(t *testing.T) {
	p := NewPlan(0, Rule{Point: "fs.rename", Hits: []uint64{2, 4}, Kind: KindError})
	var fired []int
	for i := 1; i <= 5; i++ {
		if p.Decide("fs.rename") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Fatalf("fired on hits %v, want [2 4]", fired)
	}
	st := p.Stats("fs.rename")
	if st.Hits != 5 || st.Fired != 2 {
		t.Fatalf("stats = %+v, want Hits 5 Fired 2", st)
	}
}

func TestSetEnabled(t *testing.T) {
	p := NewPlan(0, Rule{Point: "x", Prob: 1, Kind: KindError})
	p.SetEnabled(false)
	for i := 0; i < 10; i++ {
		if p.Decide("x") != nil {
			t.Fatal("disarmed plan fired")
		}
	}
	if st := p.Stats("x"); st.Hits != 10 || st.Fired != 0 {
		t.Fatalf("stats = %+v, want Hits 10 Fired 0", st)
	}
	p.SetEnabled(true)
	if p.Decide("x") == nil {
		t.Fatal("re-armed plan did not fire")
	}
}

func TestBoundaryError(t *testing.T) {
	p := NewPlan(0, Rule{Point: "pass.place", Hits: []uint64{1}, Kind: KindError})
	err := p.Boundary(context.Background(), "pass.place")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if err := p.Boundary(context.Background(), "pass.place"); err != nil {
		t.Fatalf("hit 2 fired unexpectedly: %v", err)
	}
}

func TestBoundaryCustomError(t *testing.T) {
	custom := errors.New("disk on fire")
	p := NewPlan(0, Rule{Point: "pass.emit", Prob: 1, Kind: KindError, Err: custom})
	if err := p.Boundary(context.Background(), "pass.emit"); !errors.Is(err, custom) {
		t.Fatalf("err = %v, want custom error", err)
	}
}

func TestBoundaryLatencyCancellable(t *testing.T) {
	p := NewPlan(0, Rule{Point: "pass.schedule", Prob: 1, Kind: KindLatency, Latency: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Boundary(ctx, "pass.schedule"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFiredPrefixSum(t *testing.T) {
	p := NewPlan(0,
		Rule{Point: "fs.write", Prob: 1, Kind: KindError},
		Rule{Point: "fs.rename", Prob: 1, Kind: KindError},
		Rule{Point: "pass.place", Prob: 1, Kind: KindError},
	)
	p.Decide("fs.write")
	p.Decide("fs.rename")
	p.Decide("pass.place")
	if n := p.Fired("fs."); n != 2 {
		t.Fatalf(`Fired("fs.") = %d, want 2`, n)
	}
	if n := p.Fired(""); n != 3 {
		t.Fatalf(`Fired("") = %d, want 3`, n)
	}
}
