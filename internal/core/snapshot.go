package core

import (
	"encoding/json"
	"fmt"
	"time"

	"zac/internal/engine"
	"zac/internal/fidelity"
	"zac/internal/zair"
)

// Snapshot is the persistable subset of a Result: everything a consumer of
// a finished compilation needs (the ZAIR program, the fidelity evaluation,
// and the summary scalars), without the placement plan and staged circuit,
// whose deep pointer graphs into the architecture make them impractical to
// serialize. A Result restored from a Snapshot therefore has Plan == nil
// and Staged == nil; callers that need the plan (e.g. the Fig. 13
// optimality bounds) detect that and rebuild it.
type Snapshot struct {
	Program          *zair.Program      `json:"program"`
	Stats            fidelity.Stats     `json:"stats"`
	Breakdown        fidelity.Breakdown `json:"breakdown"`
	Duration         float64            `json:"duration_us"`
	CompileTime      time.Duration      `json:"compile_ns"`
	NumRydbergStages int                `json:"rydberg_stages"`
	NumJobs          int                `json:"rearrange_jobs"`
	ReusedGates      int                `json:"reused_gates"`
	TotalMoves       int                `json:"moves"`
	Passes           []PassTiming       `json:"passes,omitempty"`
}

// SnapshotOf extracts the persistable subset of r.
func SnapshotOf(r *Result) *Snapshot {
	return &Snapshot{
		Program: r.Program, Stats: r.Stats, Breakdown: r.Breakdown,
		Duration: r.Duration, CompileTime: r.CompileTime,
		NumRydbergStages: r.NumRydbergStages, NumJobs: r.NumJobs,
		ReusedGates: r.ReusedGates, TotalMoves: r.TotalMoves,
		Passes: r.Passes,
	}
}

// Result reconstitutes the snapshot as a Result with nil Plan and Staged.
func (s *Snapshot) Result() *Result {
	return &Result{
		Program: s.Program, Stats: s.Stats, Breakdown: s.Breakdown,
		Duration: s.Duration, CompileTime: s.CompileTime,
		NumRydbergStages: s.NumRydbergStages, NumJobs: s.NumJobs,
		ReusedGates: s.ReusedGates, TotalMoves: s.TotalMoves,
		Passes: s.Passes,
	}
}

// ResultCodec returns the engine codec that persists *Result values through
// their Snapshot form — the codec the experiment harness and zac-serve use
// for the disk tier of the compilation cache.
func ResultCodec() *engine.Codec {
	return &engine.Codec{
		Encode: func(v any) ([]byte, error) {
			r, ok := v.(*Result)
			if !ok {
				return nil, fmt.Errorf("core: ResultCodec cannot encode %T", v)
			}
			return json.Marshal(SnapshotOf(r))
		},
		Decode: func(data []byte) (any, error) {
			var s Snapshot
			if err := json.Unmarshal(data, &s); err != nil {
				return nil, err
			}
			return s.Result(), nil
		},
	}
}
