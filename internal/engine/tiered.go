package engine

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"

	"zac/internal/telemetry"
)

// Codec serializes cached values for the disk tier. Entries looked up with a
// nil *Codec stay memory-only: they deduplicate and memoize within the
// process but are never persisted (the right choice for values holding deep
// pointer graphs, like placement plans).
type Codec struct {
	// Encode turns a computed value into a persistable payload.
	Encode func(v any) ([]byte, error)
	// Decode reconstructs a value from a persisted payload.
	Decode func(data []byte) (any, error)
}

// JSONCodec returns the Codec that round-trips T through encoding/json —
// sufficient for plain-data results (fidelity breakdowns, reports, compile
// summaries).
func JSONCodec[T any]() *Codec {
	return &Codec{
		Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
		Decode: func(data []byte) (any, error) {
			var v T
			if err := json.Unmarshal(data, &v); err != nil {
				return nil, err
			}
			return v, nil
		},
	}
}

// Tiered is the compilation cache hierarchy: a single-flight layer (callers
// computing the same key concurrently share one computation), an LRU
// in-memory front, and an optional content-addressed disk back tier so
// results survive restarts and are shared across processes. Lookup order is
// memory → in-flight → disk → compute; computed values are written through
// to both tiers. Errors are memoized in memory only (compilation is
// deterministic, so a failure recomputes to the same failure) and never
// persisted.
type Tiered struct {
	mu       sync.Mutex
	inflight map[string]*flight
	mem      *LRU
	disk     atomic.Pointer[DiskCache]

	memHits  atomic.Uint64
	diskHits atomic.Uint64
	misses   atomic.Uint64
}

// flight is one in-progress computation; waiters block on ready. The
// computation runs under its own context, cancelled only when every caller
// interested in the result has cancelled — one client abandoning a shared
// compilation must not fail the others.
type flight struct {
	ready chan struct{}
	val   any
	err   error

	// leaderTrace is the telemetry trace ID of the caller that started the
	// computation ("" when it carried no trace), so joiners can record which
	// request's story their wait belongs to.
	leaderTrace string

	cancel  context.CancelFunc
	mu      sync.Mutex
	waiters int
}

// join registers one more caller interested in the flight's result. It
// refuses (returning false) when the flight is moribund — every previous
// caller cancelled, so its computation is already being torn down and a
// new caller must start its own instead of inheriting the cancellation.
func (f *flight) join() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.waiters == 0 {
		return false
	}
	f.waiters++
	return true
}

// leave deregisters a caller that gave up waiting; the last one to leave
// cancels the computation. waiters only reaches zero through
// cancellation — normal completion never decrements — so waiters == 0 is
// the moribund marker join checks.
func (f *flight) leave() {
	f.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	f.mu.Unlock()
	if last {
		f.cancel()
	}
}

// memEntry is a completed result resident in the LRU front.
type memEntry struct {
	val any
	err error
}

// transientError marks a failure as a condition of the moment rather than a
// property of the key; see Transient.
type transientError struct{ error }

// Unwrap exposes the wrapped error to errors.Is/As chains.
func (t transientError) Unwrap() error { return t.error }

// Transient wraps err so the cache will deliver it to waiters but never
// memoize it — the same contract cancellation errors get. Use it for
// failures that say nothing about the key: admission rejections, resource
// exhaustion, I/O trouble. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return transientError{err}
}

// NewTiered returns a memory-only tiered cache whose LRU front holds at most
// memEntries values (≤ 0 for unbounded). Attach a disk tier with SetDisk.
func NewTiered(memEntries int) *Tiered {
	return &Tiered{inflight: map[string]*flight{}, mem: NewLRU(memEntries)}
}

// SetDisk attaches (or, with nil, detaches) the persistent tier. Safe to
// call concurrently with lookups; in-flight computations commit to the tier
// visible when they finish.
func (t *Tiered) SetDisk(d *DiskCache) { t.disk.Store(d) }

// Disk returns the attached persistent tier, or nil.
func (t *Tiered) Disk() *DiskCache { return t.disk.Load() }

// Do returns the cached value for key, computing it with compute on the
// first call. Calls that arrive while a computation is in flight block and
// share its result, counting as memory hits; values restored from the disk
// tier count as disk hits.
func (t *Tiered) Do(key string, codec *Codec, compute func() (any, error)) (any, error) {
	return t.DoCtx(context.Background(), key, codec, func(context.Context) (any, error) { return compute() })
}

// Tier names where a tiered lookup was served from; see DoCtxTier.
type Tier string

// The tiers a DoCtxTier lookup can resolve through.
const (
	// TierMem is an LRU memory-front hit.
	TierMem Tier = "mem"
	// TierJoin is a single-flight join: the caller shared another caller's
	// in-progress computation.
	TierJoin Tier = "join"
	// TierDisk is a disk-tier restore.
	TierDisk Tier = "disk"
	// TierCompute is a full miss: the caller ran the computation itself.
	TierCompute Tier = "compute"
)

// DoCtx is Do with caller-aware cancellation. compute receives a context
// that is cancelled only when every caller sharing the computation has
// cancelled: the originator's disconnect does not fail waiters that joined
// the flight, and a waiter's cancellation returns its own ctx error while
// the computation keeps running for the rest. Cancelled results are never
// memoized, so the next caller recomputes.
func (t *Tiered) DoCtx(ctx context.Context, key string, codec *Codec, compute func(ctx context.Context) (any, error)) (any, error) {
	v, _, err := t.DoCtxTier(ctx, key, codec, compute)
	return v, err
}

// DoCtxTier is DoCtx, additionally reporting which Tier served the lookup
// ("" when the caller's context was already done). When ctx carries a
// telemetry trace, the lookup records a "cache.lookup" span with per-tier
// child spans (cache.mem, cache.join, cache.disk) and the computation runs
// under the lookup span, so pipeline passes nest inside the request's trace;
// joiners record the leader's trace ID.
func (t *Tiered) DoCtxTier(ctx context.Context, key string, codec *Codec, compute func(ctx context.Context) (any, error)) (any, Tier, error) {
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	ctx, lookup := telemetry.Start(ctx, "cache.lookup")
	t.mu.Lock()
	if v, ok := t.mem.Get(key); ok {
		t.mu.Unlock()
		t.memHits.Add(1)
		telemetry.Event(ctx, "cache.mem", "hit", "true")
		lookup.Set("tier", string(TierMem))
		lookup.End()
		e := v.(memEntry)
		return e.val, TierMem, e.err
	}
	if f, ok := t.inflight[key]; ok && f.join() {
		t.mu.Unlock()
		t.memHits.Add(1)
		_, joinSpan := telemetry.Start(ctx, "cache.join")
		joinSpan.Set("leader_trace", f.leaderTrace)
		lookup.Set("tier", string(TierJoin))
		select {
		case <-f.ready:
			joinSpan.End()
			lookup.End()
			return f.val, TierJoin, f.err
		case <-ctx.Done():
			f.leave()
			joinSpan.Set("abandoned", "true")
			joinSpan.End()
			lookup.End()
			return nil, TierJoin, ctx.Err()
		}
	}
	// No shareable computation in flight — none at all, or a moribund one
	// whose callers all cancelled. Start our own, replacing any dead map
	// entry (finish only deletes the entry it installed). The computation
	// inherits the originator's context values (tracing, fault-injection
	// plans) but not its cancellation — that is relayed through the waiter
	// refcount below, so one caller's disconnect cannot fail the others.
	computeCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight{ready: make(chan struct{}), cancel: cancel, waiters: 1,
		leaderTrace: telemetry.From(ctx).TraceID()}
	t.inflight[key] = f
	t.mu.Unlock()
	defer cancel()
	telemetry.Event(ctx, "cache.mem", "hit", "false")

	disk := t.Disk()
	if disk != nil && codec != nil {
		_, diskSpan := telemetry.Start(ctx, "cache.disk")
		if diskSpan != nil { // Stats takes locks; skip it when not tracing
			diskSpan.Set("breaker", disk.Stats().BreakerState)
		}
		if data, ok := disk.Get(key); ok {
			if v, err := codec.Decode(data); err == nil {
				t.diskHits.Add(1)
				diskSpan.Set("hit", "true")
				diskSpan.End()
				lookup.Set("tier", string(TierDisk))
				lookup.End()
				t.finish(key, f, v, nil)
				return v, TierDisk, nil
			}
			// Decodable-envelope but undecodable payload: a codec or schema
			// change. Drop the entry and fall through to a recompute.
			disk.Remove(key)
		}
		diskSpan.Set("hit", "false")
		diskSpan.End()
	}

	// Relay the originator's cancellation through the waiter refcount: if
	// it fires while others still want the result, the computation — which
	// runs on the originator's goroutine — continues for them.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			f.leave()
		case <-watchDone:
		}
	}()

	t.misses.Add(1)
	v, err := compute(computeCtx)
	close(watchDone)
	if err == nil && disk != nil && codec != nil {
		if data, encErr := codec.Encode(v); encErr == nil {
			disk.Put(key, data) // best effort; a failed write only costs a future recompute
		}
	}
	lookup.Set("tier", string(TierCompute))
	lookup.End()
	t.finish(key, f, v, err)
	return v, TierCompute, err
}

// finish publishes a completed computation to the LRU front and releases
// the single-flight waiters. Cancellation and Transient-marked errors are
// delivered to waiters but not memoized — they say nothing about the key,
// and caching one would poison it for every future caller.
func (t *Tiered) finish(key string, f *flight, v any, err error) {
	f.val, f.err = v, err
	var te transientError
	t.mu.Lock()
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) && !errors.As(err, &te) {
		t.mem.Put(key, memEntry{val: v, err: err})
	}
	// A moribund flight may already have been replaced by a fresh one;
	// only remove the entry this computation installed.
	if t.inflight[key] == f {
		delete(t.inflight, key)
	}
	t.mu.Unlock()
	close(f.ready)
}

// Reset drops every in-memory entry and zeroes the lookup counters. The disk
// tier is left intact — after a Reset, previously computed keys come back as
// disk hits, which is exactly the restart scenario Reset simulates in tests.
func (t *Tiered) Reset() {
	t.mu.Lock()
	t.mem.Clear()
	t.mu.Unlock()
	t.memHits.Store(0)
	t.diskHits.Store(0)
	t.misses.Store(0)
}

// TieredStats reports the hierarchy's effectiveness counters.
type TieredStats struct {
	MemHits    uint64
	DiskHits   uint64
	Misses     uint64
	MemEntries int
	Disk       DiskStats // zero when no disk tier is attached
}

// Hits returns memory plus disk hits.
func (s TieredStats) Hits() uint64 { return s.MemHits + s.DiskHits }

// Lookups returns the total number of Do calls observed.
func (s TieredStats) Lookups() uint64 { return s.MemHits + s.DiskHits + s.Misses }

// HitRate returns hits over lookups in [0, 1], or 0 before any lookup.
func (s TieredStats) HitRate() float64 {
	if s.Lookups() == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(s.Lookups())
}

// Stats returns the current counters.
func (t *Tiered) Stats() TieredStats {
	t.mu.Lock()
	entries := t.mem.Len()
	t.mu.Unlock()
	st := TieredStats{
		MemHits: t.memHits.Load(), DiskHits: t.diskHits.Load(),
		Misses: t.misses.Load(), MemEntries: entries,
	}
	if d := t.Disk(); d != nil {
		st.Disk = d.Stats()
	}
	return st
}

// GetTiered is the typed wrapper over Do.
func GetTiered[T any](t *Tiered, key string, codec *Codec, compute func() (T, error)) (T, error) {
	v, err := t.Do(key, codec, func() (any, error) { return compute() })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// GetTieredCtx is the typed wrapper over DoCtx.
func GetTieredCtx[T any](t *Tiered, ctx context.Context, key string, codec *Codec, compute func(ctx context.Context) (T, error)) (T, error) {
	v, _, err := GetTieredCtxTier(t, ctx, key, codec, compute)
	return v, err
}

// GetTieredCtxTier is the typed wrapper over DoCtxTier.
func GetTieredCtxTier[T any](t *Tiered, ctx context.Context, key string, codec *Codec, compute func(ctx context.Context) (T, error)) (T, Tier, error) {
	v, tier, err := t.DoCtxTier(ctx, key, codec, func(ctx context.Context) (any, error) { return compute(ctx) })
	if err != nil {
		var zero T
		return zero, tier, err
	}
	return v.(T), tier, nil
}
