package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"math/rand/v2"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// diskMagic versions the on-disk entry format; bumping it invalidates every
// existing cache file (they read as corrupt and are discarded).
const diskMagic = "zacdisk1"

// diskSuffix is the extension of committed cache entries; writers stage
// under a ".tmp" name first, so readers never observe a half-written entry.
const diskSuffix = ".zc"

// ErrDiskUnavailable is returned by Put while the disk tier's circuit
// breaker is open: persistent I/O failures have degraded the cache to
// memory-only operation until a reprobe succeeds.
var ErrDiskUnavailable = errors.New("engine: disk tier unavailable (circuit breaker open)")

// RetryPolicy shapes the disk tier's transient-I/O handling: how often an
// operation is retried with jittered exponential backoff, and when the
// circuit breaker opens and reprobes. The zero value of any field selects
// its default.
type RetryPolicy struct {
	// Attempts is the total tries per operation, including the first
	// (default 3).
	Attempts int
	// BaseDelay is the backoff before the first retry; it doubles per retry
	// and carries ±50% jitter (default 500µs).
	BaseDelay time.Duration
	// FailThreshold is the number of consecutive failed operations (each
	// already retried Attempts times) that opens the breaker (default 3).
	FailThreshold int
	// Reprobe is how long the breaker stays open before letting one trial
	// operation through (default 1s).
	Reprobe time.Duration
	// Sleep overrides the backoff sleeper; nil selects time.Sleep. Tests
	// substitute a no-op to keep retry loops fast.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy returns the production retry/breaker configuration.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, BaseDelay: 500 * time.Microsecond, FailThreshold: 3, Reprobe: time.Second}
}

// withDefaults fills zero fields from DefaultRetryPolicy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.Attempts <= 0 {
		p.Attempts = def.Attempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = def.BaseDelay
	}
	if p.FailThreshold <= 0 {
		p.FailThreshold = def.FailThreshold
	}
	if p.Reprobe <= 0 {
		p.Reprobe = def.Reprobe
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Breaker lifecycle states (see BreakerState).
const (
	// BreakerClosed is normal operation: the disk tier is healthy.
	BreakerClosed = "closed"
	// BreakerOpen means persistent I/O failures tripped the breaker: every
	// disk operation is skipped (reads miss, writes refuse) until the
	// reprobe interval elapses.
	BreakerOpen = "open"
	// BreakerHalfOpen means the reprobe interval elapsed and one trial
	// operation is in flight; its outcome closes or re-opens the breaker.
	BreakerHalfOpen = "half-open"
)

// DiskCache is a content-addressed byte store on the local filesystem: keys
// hash to fan-out subdirectories, entries carry a checksum header, writes go
// through a temp file plus atomic rename, and corrupt or truncated entries
// are detected on read and silently discarded as misses. It is safe for
// concurrent use within a process and for concurrent readers across
// processes sharing the directory (the rename commit is atomic).
//
// All I/O goes through a narrow FS seam, and transient failures are retried
// with jittered backoff; persistent failures open a circuit breaker that
// degrades the tier to fast no-ops (reads miss, writes refuse) until a
// reprobe succeeds — so a dying disk slows nothing down and a recovered one
// is picked back up automatically.
type DiskCache struct {
	dir      string
	maxBytes int64
	fsys     FS
	policy   RetryPolicy

	mu      sync.Mutex // guards size/entries accounting and eviction scans
	size    int64
	entries int

	bmu        sync.Mutex // guards the breaker state machine
	consecFail int
	state      string
	openUntil  time.Time

	hits, misses, corrupt, evicted atomic.Uint64
	retries, ioFailures            atomic.Uint64
	breakerOpens, breakerSkips     atomic.Uint64
}

// OpenDiskCache opens (creating if needed) a disk cache rooted at dir.
// maxBytes bounds the total payload+header bytes on disk (0 = unbounded);
// when the directory is over the bound — at open, or after a Put — the
// least recently read entries are evicted. Stale temp files from crashed
// writers are removed. Size accounting is refreshed from the filesystem on
// every eviction scan, so a directory shared with other writers converges
// back under the bound whenever this process's own writes trigger one.
func OpenDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	return OpenDiskCacheFS(dir, maxBytes, OSFS)
}

// OpenDiskCacheFS is OpenDiskCache over an explicit filesystem seam — the
// entry point the fault-injection harness uses to drive the cache's
// recovery paths with injected errors, latency, and corruption.
func OpenDiskCacheFS(dir string, maxBytes int64, fsys FS) (*DiskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("engine: disk cache directory must not be empty")
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &DiskCache{dir: dir, maxBytes: maxBytes, fsys: fsys, policy: DefaultRetryPolicy().withDefaults(), state: BreakerClosed}
	err := fsys.WalkDir(dir, func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		switch {
		case strings.HasSuffix(path, ".tmp"):
			fsys.Remove(path) // leftover from an interrupted writer
		case strings.HasSuffix(path, diskSuffix):
			if info, err := de.Info(); err == nil {
				d.size += info.Size()
				d.entries++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if d.maxBytes > 0 && d.size > d.maxBytes {
		d.evict("")
	}
	return d, nil
}

// SetRetryPolicy replaces the retry/breaker configuration (zero fields keep
// their defaults). Call before the cache sees traffic; it is not
// synchronized with in-flight operations.
func (d *DiskCache) SetRetryPolicy(p RetryPolicy) { d.policy = p.withDefaults() }

// Dir returns the cache's root directory.
func (d *DiskCache) Dir() string { return d.dir }

// path maps a key to its entry file: two hex characters of fan-out, then the
// full SHA-256 of the key.
func (d *DiskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(d.dir, name[:2], name+diskSuffix)
}

// allow reports whether the breaker admits a disk operation right now,
// transitioning open → half-open when the reprobe interval has elapsed.
func (d *DiskCache) allow() bool {
	d.bmu.Lock()
	defer d.bmu.Unlock()
	switch d.state {
	case BreakerOpen:
		if time.Now().Before(d.openUntil) {
			d.breakerSkips.Add(1)
			return false
		}
		d.state = BreakerHalfOpen // this caller is the reprobe trial
		return true
	case BreakerHalfOpen:
		d.breakerSkips.Add(1)
		return false // one trial at a time
	default:
		return true
	}
}

// opSuccess records a healthy disk operation, closing the breaker.
func (d *DiskCache) opSuccess() {
	d.bmu.Lock()
	d.consecFail = 0
	d.state = BreakerClosed
	d.bmu.Unlock()
}

// opFailure records an operation that exhausted its retries; enough in a
// row — or one failed reprobe — re-opens the breaker.
func (d *DiskCache) opFailure() {
	d.ioFailures.Add(1)
	d.bmu.Lock()
	d.consecFail++
	if d.state == BreakerHalfOpen || d.consecFail >= d.policy.FailThreshold {
		d.state = BreakerOpen
		d.openUntil = time.Now().Add(d.policy.Reprobe)
		d.breakerOpens.Add(1)
	}
	d.bmu.Unlock()
}

// retry runs op up to Attempts times with jittered exponential backoff and
// feeds the outcome to the breaker.
func (d *DiskCache) retry(op func() error) error {
	var err error
	for i := 0; i < d.policy.Attempts; i++ {
		if i > 0 {
			d.retries.Add(1)
			delay := d.policy.BaseDelay << (i - 1)
			// ±50% jitter decorrelates retry storms across callers.
			d.policy.Sleep(delay/2 + time.Duration(rand.Int64N(int64(delay))))
		}
		if err = op(); err == nil {
			d.opSuccess()
			return nil
		}
	}
	d.opFailure()
	return err
}

// Get returns the payload stored for key. A missing, truncated, corrupt, or
// colliding entry reads as a miss; damaged files are deleted so the next Put
// can rewrite them. A successful read refreshes the entry's mtime, which is
// the recency signal eviction sorts by. Transient read errors are retried;
// with the breaker open, Get misses immediately (the tier is degraded to
// memory-only).
func (d *DiskCache) Get(key string) ([]byte, bool) {
	if !d.allow() {
		d.misses.Add(1)
		return nil, false
	}
	path := d.path(key)
	var raw []byte
	err := d.retry(func() error {
		b, err := d.fsys.ReadFile(path)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				raw = nil // a miss is a healthy read
				return nil
			}
			return err
		}
		raw = b
		return nil
	})
	if err != nil || raw == nil {
		d.misses.Add(1)
		return nil, false
	}
	payload, ok := decodeEntry(raw, key)
	if !ok {
		d.corrupt.Add(1)
		d.misses.Add(1)
		d.discard(path)
		return nil, false
	}
	now := time.Now()
	d.fsys.Chtimes(path, now, now) // best effort: feed the LRU eviction order
	d.hits.Add(1)
	return payload, true
}

// Put stores payload under key, replacing any previous entry, and evicts
// least recently read entries if the size bound is exceeded. The staged
// write (temp file + rename) is retried as a unit on transient errors; with
// the breaker open, Put refuses immediately with ErrDiskUnavailable.
func (d *DiskCache) Put(key string, payload []byte) error {
	if !d.allow() {
		return ErrDiskUnavailable
	}
	path := d.path(key)
	entry := encodeEntry(key, payload)

	var prev int64
	replacing := false
	if info, err := d.fsys.Stat(path); err == nil {
		prev, replacing = info.Size(), true
	}
	err := d.retry(func() error {
		if err := d.fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		tmp, err := d.fsys.CreateTemp(filepath.Dir(path), "put-*.tmp")
		if err != nil {
			return err
		}
		if _, err := tmp.Write(entry); err != nil {
			tmp.Close()
			d.fsys.Remove(tmp.Name())
			return err
		}
		if err := tmp.Close(); err != nil {
			d.fsys.Remove(tmp.Name())
			return err
		}
		if err := d.fsys.Rename(tmp.Name(), path); err != nil {
			d.fsys.Remove(tmp.Name())
			return err
		}
		return nil
	})
	if err != nil {
		return err
	}

	d.mu.Lock()
	d.size += int64(len(entry)) - prev
	if !replacing {
		d.entries++
	}
	over := d.maxBytes > 0 && d.size > d.maxBytes
	d.mu.Unlock()
	if over {
		d.evict(path)
	}
	return nil
}

// Remove deletes the entry for key if present.
func (d *DiskCache) Remove(key string) { d.discard(d.path(key)) }

// discard deletes an entry file by path and fixes the accounting.
func (d *DiskCache) discard(path string) {
	info, err := d.fsys.Stat(path)
	if err != nil {
		return
	}
	if d.fsys.Remove(path) != nil {
		return
	}
	d.mu.Lock()
	d.size -= info.Size()
	d.entries--
	d.mu.Unlock()
}

// evict removes least recently read entries (oldest mtime first) until the
// cache fits 90% of the byte bound — the hysteresis keeps a steady-state
// bounded cache from re-walking the directory on every single Put. keep is
// never evicted — it is the entry whose Put triggered the scan. The walk's
// totals replace the in-memory accounting, so entries added or removed by
// other processes sharing the directory are reconciled here.
func (d *DiskCache) evict(keep string) {
	type entry struct {
		path  string
		mtime time.Time
		size  int64
	}
	var all []entry
	var keepSize, total int64
	d.fsys.WalkDir(d.dir, func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(path, diskSuffix) {
			return nil
		}
		info, err := de.Info()
		if err != nil {
			return nil
		}
		total += info.Size()
		if path == keep {
			keepSize = info.Size()
			return nil
		}
		all = append(all, entry{path, info.ModTime(), info.Size()})
		return nil
	})
	sort.Slice(all, func(i, j int) bool { return all[i].mtime.Before(all[j].mtime) })

	d.mu.Lock()
	defer d.mu.Unlock()
	d.size = total
	d.entries = len(all)
	if keep != "" {
		d.entries++
	}
	target := d.maxBytes - d.maxBytes/10
	if target < keepSize {
		target = keepSize
	}
	for _, e := range all {
		if d.size <= target {
			break
		}
		if d.fsys.Remove(e.path) == nil {
			d.size -= e.size
			d.entries--
			d.evicted.Add(1)
		}
	}
}

// DiskStats reports the disk tier's counters.
type DiskStats struct {
	Entries int
	Bytes   int64
	Hits    uint64
	Misses  uint64
	Corrupt uint64 // entries dropped by checksum/header verification
	Evicted uint64 // entries removed by the size bound

	Retries      uint64 // individual operation retries (backoff sleeps)
	IOFailures   uint64 // operations that exhausted their retries
	BreakerOpens uint64 // closed/half-open → open transitions
	BreakerSkips uint64 // operations short-circuited while the breaker was open
	BreakerState string // BreakerClosed, BreakerOpen, or BreakerHalfOpen
}

// Stats returns the current counters.
func (d *DiskCache) Stats() DiskStats {
	d.mu.Lock()
	entries, size := d.entries, d.size
	d.mu.Unlock()
	d.bmu.Lock()
	state := d.state
	d.bmu.Unlock()
	return DiskStats{
		Entries: entries, Bytes: size,
		Hits: d.hits.Load(), Misses: d.misses.Load(),
		Corrupt: d.corrupt.Load(), Evicted: d.evicted.Load(),
		Retries: d.retries.Load(), IOFailures: d.ioFailures.Load(),
		BreakerOpens: d.breakerOpens.Load(), BreakerSkips: d.breakerSkips.Load(),
		BreakerState: state,
	}
}

// encodeEntry frames a payload with a verifiable header:
//
//	zacdisk1 <sha256(payload) hex> <len(payload)> <url-escaped key>\n<payload>
//
// The escaped key makes hash collisions (and accidental cross-key reads
// after a format change) detectable, and doubles as debugging metadata.
func encodeEntry(key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d %s\n", diskMagic, hex.EncodeToString(sum[:]), len(payload), url.QueryEscape(key))
	return append([]byte(header), payload...)
}

// decodeEntry validates a raw entry file against the expected key and
// returns the payload, or false for any malformed, truncated, or mismatched
// content.
func decodeEntry(raw []byte, key string) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	fields := strings.Split(string(raw[:nl]), " ")
	if len(fields) != 4 || fields[0] != diskMagic {
		return nil, false
	}
	storedKey, err := url.QueryUnescape(fields[3])
	if err != nil || storedKey != key {
		return nil, false
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil {
		return nil, false
	}
	payload := raw[nl+1:]
	if len(payload) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[1] {
		return nil, false
	}
	return payload, true
}
