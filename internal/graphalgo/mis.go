package graphalgo

import "sort"

// MaximalIndependentSet returns a maximal independent set of the conflict
// graph given by adjacency lists, preferring low-degree vertices first (the
// standard greedy heuristic, as used by Enola for movement grouping). The
// result is sorted ascending.
func MaximalIndependentSet(n int, adj [][]int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := len(adj[order[a]]), len(adj[order[b]])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	blocked := make([]bool, n)
	var set []int
	for _, v := range order {
		if blocked[v] {
			continue
		}
		set = append(set, v)
		blocked[v] = true
		for _, w := range adj[v] {
			blocked[w] = true
		}
	}
	sort.Ints(set)
	return set
}

// PartitionIntoIndependentSets repeatedly extracts maximal independent sets
// until every vertex is covered, returning the groups in extraction order.
// This is how rearrangement jobs are formed from a movement conflict graph
// (paper §VI, following Enola): each group is one job of compatible moves.
func PartitionIntoIndependentSets(n int, adj [][]int) [][]int {
	remaining := make([]bool, n)
	for i := range remaining {
		remaining[i] = true
	}
	left := n
	var groups [][]int
	for left > 0 {
		// Build the induced subgraph over remaining vertices.
		idx := make([]int, 0, left)
		pos := make([]int, n)
		for i := range pos {
			pos[i] = -1
		}
		for v := 0; v < n; v++ {
			if remaining[v] {
				pos[v] = len(idx)
				idx = append(idx, v)
			}
		}
		sub := make([][]int, len(idx))
		for si, v := range idx {
			for _, w := range adj[v] {
				if remaining[w] {
					sub[si] = append(sub[si], pos[w])
				}
			}
		}
		mis := MaximalIndependentSet(len(idx), sub)
		group := make([]int, len(mis))
		for i, si := range mis {
			group[i] = idx[si]
			remaining[idx[si]] = false
		}
		left -= len(group)
		groups = append(groups, group)
	}
	return groups
}

// IsIndependent reports whether set is an independent set of adj.
func IsIndependent(adj [][]int, set []int) bool {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for _, v := range set {
		for _, w := range adj[v] {
			if in[w] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependent reports whether set is independent and no vertex can
// be added without breaking independence.
func IsMaximalIndependent(n int, adj [][]int, set []int) bool {
	if !IsIndependent(adj, set) {
		return false
	}
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for v := 0; v < n; v++ {
		if in[v] {
			continue
		}
		conflict := false
		for _, w := range adj[v] {
			if in[w] {
				conflict = true
				break
			}
		}
		if !conflict {
			return false
		}
	}
	return true
}
