package atomique

import (
	"testing"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/resynth"
)

func stage(t *testing.T, c *circuit.Circuit) *circuit.Staged {
	t.Helper()
	s, err := resynth.Preprocess(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNoAtomTransfers(t *testing.T) {
	// Atomique's signature: zero atom transfers (Fig. 9 caption).
	a := arch.Monolithic()
	res, err := Compile(stage(t, bench.GHZ(14)), a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Transfers != 0 {
		t.Errorf("transfers = %d, want 0", res.Stats.Transfers)
	}
	if res.Breakdown.Transfer != 1 {
		t.Errorf("transfer fidelity = %v, want 1", res.Breakdown.Transfer)
	}
}

func TestIntraArraySwapOverhead(t *testing.T) {
	// A gate between two even-index (both SLM) qubits forces a SWAP: 3 extra
	// CZs.
	a := arch.Monolithic()
	c := circuit.New("intra", 4)
	c.Append(circuit.CZ, []int{0, 2}) // both SLM
	res, err := Compile(stage(t, c), a)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSwaps != 1 {
		t.Errorf("swaps = %d, want 1", res.NumSwaps)
	}
	if res.Stats.TwoQGates != 4 { // 3 SWAP CZs + the gate
		t.Errorf("2Q = %d, want 4", res.Stats.TwoQGates)
	}

	// An inter-array gate needs no SWAP.
	c2 := circuit.New("inter", 4)
	c2.Append(circuit.CZ, []int{0, 1})
	res2, err := Compile(stage(t, c2), a)
	if err != nil {
		t.Fatal(err)
	}
	if res2.NumSwaps != 0 || res2.Stats.TwoQGates != 1 {
		t.Errorf("inter-array gate: swaps=%d 2Q=%d", res2.NumSwaps, res2.Stats.TwoQGates)
	}
}

func TestGlobalExposureExcitesIdlers(t *testing.T) {
	a := arch.Monolithic()
	res, err := Compile(stage(t, bench.GHZ(20)), a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Excited == 0 {
		t.Error("monolithic Atomique must excite idle qubits")
	}
	if res.NumRydbergStages < 19 {
		t.Errorf("stages = %d, want ≥ 19 (sequential chain)", res.NumRydbergStages)
	}
}

func TestRepeatedPairSplitsExposures(t *testing.T) {
	// The three CZs of one SWAP must be three exposures, not one.
	a := arch.Monolithic()
	c := circuit.New("swapcost", 4)
	c.Append(circuit.CZ, []int{0, 2})
	res, err := Compile(stage(t, c), a)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRydbergStages < 4 {
		t.Errorf("exposures = %d, want ≥ 4 (3 SWAP CZs + gate)", res.NumRydbergStages)
	}
}

func TestAllBenchmarksCompile(t *testing.T) {
	a := arch.Monolithic()
	for _, b := range bench.All() {
		res, err := Compile(stage(t, b.Build()), a)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if res.Breakdown.Total < 0 || res.Breakdown.Total > 1 {
			t.Fatalf("%s: fidelity %v", b.Name, res.Breakdown.Total)
		}
	}
}
