// Command serveclient demonstrates driving the zac-serve HTTP API from Go:
// it submits a batch of QASMBench circuits as an async job, polls the job
// until it finishes, and prints a per-circuit fidelity table plus the
// service's cache metrics. Run `zac-serve` first (ideally with -cachedir,
// so a second serveclient run is served from cache):
//
//	go run ./cmd/zac-serve -cachedir /tmp/zac-cache &
//	go run ./examples/serveclient
//	go run ./examples/serveclient -base http://localhost:8756 -circuits bv_n14,qft_n18
//
// The request/response structs below mirror the wire format documented in
// README.md; an external client only needs net/http and encoding/json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// compileRequest mirrors the POST /v1/compile request item.
type compileRequest struct {
	Circuit string `json:"circuit,omitempty"`
	Setting string `json:"setting,omitempty"`
}

// batchRequest mirrors the POST /v1/compile batch body.
type batchRequest struct {
	Requests []compileRequest `json:"requests"`
	Async    bool             `json:"async"`
}

// compileResponse mirrors the fields of a compile result this example
// reads; unknown fields are ignored by encoding/json.
type compileResponse struct {
	Name       string  `json:"name"`
	NumQubits  int     `json:"num_qubits"`
	DurationUS float64 `json:"duration_us"`
	CompileMS  float64 `json:"compile_ms"`
	Cached     bool    `json:"cached"`
	Fidelity   struct {
		Total float64 `json:"Total"`
	} `json:"fidelity"`
}

// batchItem mirrors one entry of a job's results array.
type batchItem struct {
	Result *compileResponse `json:"result"`
	Error  string           `json:"error"`
}

// jobResponse mirrors GET /v1/jobs/{id}.
type jobResponse struct {
	ID        string      `json:"id"`
	Status    string      `json:"status"`
	Total     int         `json:"total"`
	Completed int         `json:"completed"`
	Results   []batchItem `json:"results"`
}

func main() {
	base := flag.String("base", "http://127.0.0.1:8756", "zac-serve base URL")
	circuits := flag.String("circuits", "seca_n11,multiply_n13,bv_n14,qft_n18,ghz_n23",
		"comma-separated built-in benchmark names to compile")
	flag.Parse()

	var req batchRequest
	req.Async = true
	for _, name := range strings.Split(*circuits, ",") {
		req.Requests = append(req.Requests, compileRequest{Circuit: strings.TrimSpace(name)})
	}

	// Submit the batch; the service answers 202 with a job id immediately.
	// An overloaded (429) or draining (503) service is retried with the
	// backoff it asks for.
	body, _ := json.Marshal(req)
	resp, err := doRetry(func() (*http.Response, error) {
		return http.Post(*base+"/v1/compile?zair=0", "application/json", bytes.NewReader(body))
	})
	if err != nil {
		fatal(fmt.Errorf("is zac-serve running at %s? %w", *base, err))
	}
	var job jobResponse
	decodeBody(resp, &job)
	if job.ID == "" {
		fatal(fmt.Errorf("no job id in submit response"))
	}
	fmt.Printf("submitted %s: %d circuits\n", job.ID, job.Total)

	// Poll until the job leaves the pending/running states.
	for job.Status == "pending" || job.Status == "running" {
		time.Sleep(100 * time.Millisecond)
		resp, err := doRetry(func() (*http.Response, error) {
			return http.Get(*base + "/v1/jobs/" + job.ID)
		})
		if err != nil {
			fatal(err)
		}
		decodeBody(resp, &job)
		fmt.Printf("  %s: %d/%d done\n", job.Status, job.Completed, job.Total)
	}

	fmt.Printf("\n%-16s %7s %12s %12s %7s\n", "circuit", "qubits", "fidelity", "duration", "cached")
	for _, item := range job.Results {
		if item.Error != "" {
			fmt.Printf("%-16s ERROR: %s\n", "-", item.Error)
			continue
		}
		r := item.Result
		fmt.Printf("%-16s %7d %12.4f %9.3f ms %7v\n",
			r.Name, r.NumQubits, r.Fidelity.Total, r.DurationUS/1000, r.Cached)
	}

	// Show what the round trip cost the service.
	resp, err = http.Get(*base + "/metrics")
	if err != nil {
		fatal(err)
	}
	var metrics struct {
		Cache struct {
			MemHits  uint64  `json:"mem_hits"`
			DiskHits uint64  `json:"disk_hits"`
			Misses   uint64  `json:"misses"`
			HitRate  float64 `json:"hit_rate"`
		} `json:"cache"`
	}
	decodeBody(resp, &metrics)
	fmt.Printf("\nservice cache: %d mem hits, %d disk hits, %d misses (%.0f%% hit rate)\n",
		metrics.Cache.MemHits, metrics.Cache.DiskHits, metrics.Cache.Misses, 100*metrics.Cache.HitRate)
}

// doRetry issues the request and, on 429 (overloaded) or 503 (draining),
// retries with capped jittered backoff, honoring a Retry-After header when
// the server sends one. Any other status — or exhausted retries — returns
// the response as-is for the caller to decode.
func doRetry(do func() (*http.Response, error)) (*http.Response, error) {
	const maxAttempts = 6
	backoff := 200 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for attempt := 1; ; attempt++ {
		resp, err := do()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
			return resp, nil
		}
		if attempt == maxAttempts {
			return resp, nil
		}
		// Prefer the server's own hint; fall back to our exponential
		// schedule. Either way add jitter so a fleet of shed clients does
		// not return in lockstep.
		wait := backoff
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			wait = time.Duration(s) * time.Second
		}
		wait = wait/2 + time.Duration(rand.Int63n(int64(wait/2)+1))
		if wait > maxBackoff {
			wait = maxBackoff
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		fmt.Fprintf(os.Stderr, "serveclient: %s — retrying in %v (attempt %d/%d)\n",
			http.StatusText(resp.StatusCode), wait.Round(time.Millisecond), attempt, maxAttempts)
		time.Sleep(wait)
		backoff *= 2
	}
}

// decodeBody decodes a JSON response body into v and closes it.
func decodeBody(resp *http.Response, v any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		fatal(fmt.Errorf("decoding response: %w", err))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "serveclient: %v\n", err)
	os.Exit(1)
}
