package matching

import (
	"errors"
	"math"
)

// ErrNoFullMatching is returned by MinWeightFullMatching when the finite
// entries of the cost matrix admit no matching that saturates every row.
var ErrNoFullMatching = errors.New("matching: no full matching exists over finite-cost edges")

// MinWeightFullMatching solves the rectangular linear assignment problem with
// the Jonker–Volgenant shortest-augmenting-path method: given an n×m cost
// matrix (n ≤ m) where cost[i][j] is the weight of assigning row i to column
// j and +Inf marks a forbidden pair, it returns an assignment rowTo (rowTo[i]
// = column of row i) of minimum total weight saturating all rows.
//
// This mirrors SciPy's min_weight_full_bipartite_matching, which the paper's
// artifact uses for gate placement and storage-return placement.
func MinWeightFullMatching(cost [][]float64) (rowTo []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	for i := range cost {
		if len(cost[i]) != m {
			return nil, 0, errors.New("matching: ragged cost matrix")
		}
	}
	if n > m {
		return nil, 0, errors.New("matching: more rows than columns; no full matching possible")
	}

	inf := math.Inf(1)
	// 1-based arrays per the classic potentials formulation.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = row matched to column j (0 = none)
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 == -1 || math.IsInf(delta, 1) {
				return nil, 0, ErrNoFullMatching
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else if !math.IsInf(minv[j], 1) {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowTo = make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowTo[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][rowTo[i]]
	}
	if math.IsInf(total, 1) || math.IsNaN(total) {
		return nil, 0, ErrNoFullMatching
	}
	return rowTo, total, nil
}
