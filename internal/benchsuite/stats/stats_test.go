package stats

import (
	"errors"
	"math"
	"testing"
)

// Exact-test fixtures precomputed by brute-force enumeration of the
// permutation distribution over midranks (independent Python reference, the
// same construction benchstat's exact U distribution encodes): every
// C(n1+n2, n1) assignment of the pooled ranks, two-sided
// p = min(1, 2·min(P(U≤u), P(U≥u))).
func TestMannWhitneyUExact(t *testing.T) {
	cases := []struct {
		name  string
		x, y  []float64
		wantU float64
		wantP float64
	}{
		{"disjoint", []float64{1, 2, 3, 4, 5}, []float64{6, 7, 8, 9, 10}, 0, 0.0079365079},
		{"interleaved", []float64{1, 3, 5, 7, 9}, []float64{2, 4, 6, 8, 10}, 10, 0.6904761905},
		{"ties", []float64{1, 2, 2, 3, 5}, []float64{2, 4, 4, 5, 6}, 5.5, 0.1825396825},
		{"identical_sets", []float64{10, 11, 12, 13, 14}, []float64{10, 11, 12, 13, 14}, 12.5, 1.0},
		{"shifted_ns", []float64{100.2, 99.8, 100.1, 100.4, 99.9, 100.0},
			[]float64{109.8, 110.3, 110.1, 109.9, 110.2, 110.0}, 0, 0.0021645022},
		{"noise_only", []float64{100.2, 99.8, 100.1, 100.4, 99.9, 100.0},
			[]float64{100.3, 99.7, 100.2, 100.5, 99.8, 100.1}, 16.5, 0.8528138528},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := MannWhitneyU(tc.x, tc.y)
			if err != nil {
				t.Fatalf("MannWhitneyU: %v", err)
			}
			if !res.Exact {
				t.Fatalf("expected exact enumeration for pooled n=%d", len(tc.x)+len(tc.y))
			}
			if res.U != tc.wantU {
				t.Errorf("U = %v, want %v", res.U, tc.wantU)
			}
			if math.Abs(res.P-tc.wantP) > 1e-9 {
				t.Errorf("P = %.10f, want %.10f", res.P, tc.wantP)
			}
		})
	}
}

// The normal-approximation branch (pooled n > 22) against the standard
// tie-corrected continuity-corrected formula, fixture precomputed
// independently: U1=32, z=2.3026654177, p=0.0212976754.
func TestMannWhitneyUNormalApprox(t *testing.T) {
	x := []float64{10, 10, 11, 11, 12, 12, 13, 13, 14, 14, 15, 15}
	y := []float64{12, 12, 13, 13, 14, 14, 15, 15, 16, 16, 17, 17}
	res, err := MannWhitneyU(x, y)
	if err != nil {
		t.Fatalf("MannWhitneyU: %v", err)
	}
	if res.Exact {
		t.Fatal("expected normal approximation for pooled n=24")
	}
	if res.U != 32 {
		t.Errorf("U = %v, want 32", res.U)
	}
	if math.Abs(res.P-0.0212976754) > 1e-9 {
		t.Errorf("P = %.10f, want 0.0212976754", res.P)
	}
}

func TestMannWhitneyURefusals(t *testing.T) {
	// n < 5 on either side is refused outright — the exact distribution
	// cannot reach significance, so a "pass" would be vacuous.
	small := []float64{1, 2, 3, 4}
	big := []float64{1, 2, 3, 4, 5}
	if _, err := MannWhitneyU(small, big); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("n1=4: err = %v, want ErrTooFewSamples", err)
	}
	if _, err := MannWhitneyU(big, small); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("n2=4: err = %v, want ErrTooFewSamples", err)
	}
	// A pool of identical values has zero variance; the test must refuse
	// rather than divide by it.
	same := []float64{7, 7, 7, 7, 7}
	if _, err := MannWhitneyU(same, same); !errors.Is(err, ErrAllEqual) {
		t.Errorf("all-equal: err = %v, want ErrAllEqual", err)
	}
}

// Identical distributions must not alarm: sampling the same values in both
// arms keeps p well above any sane significance level.
func TestIdenticalDistributionNoAlarm(t *testing.T) {
	x := []float64{100.2, 99.8, 100.1, 100.4, 99.9, 100.0, 100.3, 99.7}
	y := []float64{100.1, 100.3, 99.8, 100.0, 100.4, 99.9, 100.2, 99.7}
	res, err := MannWhitneyU(x, y)
	if err != nil {
		t.Fatalf("MannWhitneyU: %v", err)
	}
	if res.P < 0.5 {
		t.Errorf("identical distributions: p = %.4f, want ≥ 0.5", res.P)
	}
}

func TestMedianCI(t *testing.T) {
	// Fixtures: (n, conf) → 1-based order-statistic indices and achieved
	// coverage, from the binomial order-statistic construction.
	cases := []struct {
		n        int
		lo, hi   int // 1-based order statistics
		coverage float64
	}{
		{5, 1, 5, 0.9375},
		{8, 1, 8, 0.9921875},
		{10, 2, 9, 0.978515625},
		{20, 6, 15, 0.9586105346679688},
	}
	for _, tc := range cases {
		xs := make([]float64, tc.n)
		for i := range xs {
			xs[i] = float64(i + 1) // sorted 1..n, so value == 1-based index
		}
		iv, err := MedianCI(xs, 0.95)
		if err != nil {
			t.Fatalf("n=%d: MedianCI: %v", tc.n, err)
		}
		if iv.Lo != float64(tc.lo) || iv.Hi != float64(tc.hi) {
			t.Errorf("n=%d: CI = [%v, %v], want [%d, %d]", tc.n, iv.Lo, iv.Hi, tc.lo, tc.hi)
		}
		if math.Abs(iv.Confidence-tc.coverage) > 1e-12 {
			t.Errorf("n=%d: coverage = %.12f, want %.12f", tc.n, iv.Confidence, tc.coverage)
		}
	}
	if _, err := MedianCI(nil, 0.95); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty sample: err = %v, want ErrNoSamples", err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
	if math.Abs(s.StdDev-2.138089935299395) > 1e-12 {
		t.Errorf("StdDev = %v", s.StdDev)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("Summarize(nil) = %+v", z)
	}
}
