// Command zac is the ZAC compiler CLI: it reads an OpenQASM 2.0 circuit (or
// a named built-in benchmark), compiles it for a zoned neutral-atom
// architecture through the compiler registry, and writes the resulting ZAIR
// program as JSON together with a fidelity report and per-pass timings.
//
//	zac -circuit ghz_n23                       # built-in benchmark
//	zac -circuit spec:rb:n=32,depth=20,seed=7  # generated workload (see -list-workloads)
//	zac -qasm program.qasm -arch arch.json     # external inputs
//	zac -circuit qft_n18 -setting dynPlace     # ablation setting
//	zac -circuit bv_n14 -out bv.zair.json      # dump ZAIR
//	zac -circuit ghz_n23 -compiler enola       # baseline via the registry
//	zac -list-compilers                        # registry contents
//	zac -list-workloads                        # generator families + schemas
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/compiler"
	"zac/internal/core"
	"zac/internal/qasm"
	"zac/internal/resynth"
	"zac/internal/telemetry"
	"zac/internal/trace"
	"zac/internal/workload"
)

func main() {
	qasmPath := flag.String("qasm", "", "OpenQASM 2.0 input file")
	benchName := flag.String("circuit", "", "built-in benchmark name (e.g. ghz_n23; see -list) or workload spec (e.g. spec:rb:n=32,depth=20,seed=7; see -list-workloads)")
	list := flag.Bool("list", false, "list built-in benchmarks and exit")
	listCompilers := flag.Bool("list-compilers", false, "list registry compilers and exit")
	listWorkloads := flag.Bool("list-workloads", false, "list workload generator families with parameter schemas and exit")
	archPath := flag.String("arch", "", "architecture JSON (default: the compiler's target architecture)")
	setting := flag.String("setting", core.SettingSADynPlaceReuse,
		"compiler setting: Vanilla | dynPlace | dynPlace+reuse | SA+dynPlace+reuse")
	compilerName := flag.String("compiler", "",
		"registry compiler (zac, zac-vanilla, enola, atomique, nalac, sc-heron, sc-grid, …); overrides -setting")
	aods := flag.Int("aods", 0, "override the number of AODs (0 = architecture default)")
	saRestarts := flag.Int("sa-restarts", 1, "independent SA initial-placement chains, best kept (zac family; ≥ 1)")
	workers := flag.Int("workers", 0, "intra-compile parallelism budget (0 = all cores; zac family)")
	out := flag.String("out", "", "write the ZAIR program JSON to this file")
	showTrace := flag.Bool("trace", false, "print the program timeline and AOD Gantt chart")
	showTelemetry := flag.Bool("telemetry", false, "print the compile's telemetry span tree (per-pass and kernel timings)")
	flag.Parse()

	// Malformed parallelism knobs exit 1 up front instead of silently
	// clamping: a script that typos -sa-restarts should not publish
	// single-chain results as multi-restart ones.
	if *saRestarts < 1 {
		fatal(fmt.Errorf("-sa-restarts must be >= 1, got %d", *saRestarts))
	}
	if *workers < 0 {
		fatal(fmt.Errorf("-workers must be >= 0 (0 = all cores), got %d", *workers))
	}

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-16s %3d qubits (paper: %d 2Q, %d 1Q gates)\n", b.Name, b.NumQubits, b.Paper2Q, b.Paper1Q)
		}
		return
	}
	if *listCompilers {
		for _, n := range compiler.Names() {
			fmt.Println(n)
		}
		return
	}
	if *listWorkloads {
		fmt.Print(workload.List())
		return
	}

	name := *compilerName
	if name == "" {
		name = *setting // the Fig. 11 legend names are registered aliases
	}
	comp, err := compiler.Get(name)
	if err != nil {
		fatal(err)
	}
	// Evaluation-model compilers (the baselines and SC routers) emit a
	// header-only program; honoring -out or -trace for them would hand
	// scripts an empty instruction stream, so refuse before compiling.
	_, emitsZAIR := compiler.Setting(comp.Name())
	if (*showTrace || *out != "") && !emitsZAIR {
		fatal(fmt.Errorf("compiler %s emits no ZAIR instruction stream; -out/-trace need a zac-family compiler", comp.Name()))
	}

	c, err := loadCircuit(*qasmPath, *benchName)
	if err != nil {
		fatal(err)
	}
	a := compiler.TargetArch(comp)
	if *archPath != "" {
		data, err := os.ReadFile(*archPath)
		if err != nil {
			fatal(err)
		}
		a = &arch.Architecture{}
		if err := json.Unmarshal(data, a); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *archPath, err))
		}
	}
	if *aods > 0 {
		a = arch.WithAODs(a, *aods)
	}

	staged, err := resynth.Preprocess(c)
	if err != nil {
		fatal(err)
	}
	// The registry-wide shaping rule: ZAC-family compilers consume the
	// unsplit staging so -out stays byte-identical across releases;
	// baselines split to the reference capacity, matching zac-bench.
	staged = circuit.SplitRydbergStages(staged, compiler.StageSplitCap(comp))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// With -telemetry the compile runs under a span trace (the same
	// instrumentation zac-serve records per request) and the tree is
	// printed after the report.
	var recorder *telemetry.Recorder
	var rootSpan *telemetry.Span
	if *showTelemetry {
		recorder = telemetry.NewRecorder(1)
		ctx, rootSpan = recorder.StartTrace(ctx, "zac.compile")
	}
	res, err := comp.Compile(ctx, staged, a, compiler.Options{SARestarts: *saRestarts, Workers: *workers})
	rootSpan.End()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("circuit:          %s (%d qubits)\n", c.Name, c.NumQubits)
	fmt.Printf("compiler:         %s\n", comp.Name())
	one, two := res.Staged.GateCounts()
	fmt.Printf("gates:            %d 2Q, %d 1Q after preprocessing\n", two, one)
	fmt.Printf("rydberg stages:   %d\n", res.NumRydbergStages)
	fmt.Printf("reused gates:     %d\n", res.ReusedGates)
	fmt.Printf("qubit movements:  %d (%d rearrangement jobs)\n", res.TotalMoves, res.NumJobs)
	fmt.Printf("duration:         %.3f ms\n", res.Duration/1000)
	fmt.Printf("compile time:     %s\n", res.CompileTime)
	if len(res.Passes) > 0 {
		fmt.Printf("passes:          ")
		for _, p := range res.Passes {
			fmt.Printf(" %s %s", p.Pass, p.Duration)
		}
		fmt.Println()
	}
	b := res.Breakdown
	fmt.Printf("fidelity:         total %.4f\n", b.Total)
	fmt.Printf("  1Q %.4f | 2Q %.4f | excitation %.4f | transfer %.4f | decoherence %.4f\n",
		b.OneQ, b.TwoQ, b.Excite, b.Transfer, b.Decohere)

	if *showTelemetry {
		if td, ok := recorder.Get(rootSpan.TraceID()); ok {
			fmt.Println()
			fmt.Print(telemetry.TreeString(td))
		}
	}

	if *showTrace {
		fmt.Println()
		fmt.Print(trace.Gantt(res.Program, 100))
	}

	if *out != "" {
		data, err := json.MarshalIndent(res.Program, "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("zair program:     %s (%d instructions)\n", *out, res.Program.NumZAIRInstructions())
	}
	fmt.Println("[INFO] Finish Compilation")
}

func loadCircuit(qasmPath, benchName string) (*circuit.Circuit, error) {
	switch {
	case qasmPath != "" && benchName != "":
		return nil, fmt.Errorf("use either -qasm or -circuit, not both")
	case qasmPath != "":
		data, err := os.ReadFile(qasmPath)
		if err != nil {
			return nil, err
		}
		c, err := qasm.Parse(string(data))
		if err != nil {
			return nil, err
		}
		c.Name = qasmPath
		return c, nil
	case benchName != "":
		if workload.IsSpec(benchName) {
			return workload.Build(benchName)
		}
		b, err := bench.ByName(benchName)
		if err != nil {
			return nil, err
		}
		return b.Build(), nil
	default:
		return nil, fmt.Errorf("provide -qasm FILE or -circuit NAME (see -list; workload specs via spec:…)")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "zac: %v\n", err)
	os.Exit(1)
}
