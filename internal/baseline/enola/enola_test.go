package enola

import (
	"testing"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/resynth"
)

func stage(t *testing.T, c *circuit.Circuit) *circuit.Staged {
	t.Helper()
	s, err := resynth.Preprocess(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompileGHZ(t *testing.T) {
	a := arch.Monolithic()
	staged := stage(t, bench.GHZ(14))
	res, err := Compile(staged, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TwoQGates != 13 {
		t.Errorf("2Q = %d", res.Stats.TwoQGates)
	}
	// Monolithic: every stage excites the 12 idle qubits (14 − 2 per gate,
	// 13 sequential stages).
	if want := 13 * (14 - 2); res.Stats.Excited != want {
		t.Errorf("excited = %d, want %d", res.Stats.Excited, want)
	}
	if res.Breakdown.Total <= 0 || res.Breakdown.Total >= 1 {
		t.Errorf("fidelity = %v", res.Breakdown.Total)
	}
}

func TestExcitationDominatesDeepCircuits(t *testing.T) {
	// Fig. 1c: for sequential circuits the excitation term dominates the 2Q
	// term on the monolithic architecture.
	a := arch.Monolithic()
	staged := stage(t, bench.GHZ(40))
	res, err := Compile(staged, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Excite >= res.Breakdown.TwoQ {
		t.Errorf("excitation fidelity %v should be below the pure 2Q term %v",
			res.Breakdown.Excite, res.Breakdown.TwoQ)
	}
}

func TestRecolorNeverWorsensStageCount(t *testing.T) {
	// Ising decomposes to commuting CZ runs; Enola's edge coloring must not
	// produce more Rydberg stages than ASAP.
	staged := stage(t, bench.Ising(20, 1))
	asap := staged.NumRydbergStages()
	recolored := 0
	for _, s := range recolorStages(staged) {
		if s.Kind == circuit.RydbergStage {
			recolored++
		}
	}
	if recolored > asap {
		t.Errorf("recolored %d stages > ASAP %d", recolored, asap)
	}
	if recolored == 0 {
		t.Error("no Rydberg stages after recoloring")
	}
}

func TestRecolorPreservesGates(t *testing.T) {
	staged := stage(t, bench.QFT(8))
	count := func(stages []circuit.Stage) (one, two int) {
		for _, s := range stages {
			if s.Kind == circuit.OneQStage {
				one += len(s.Gates)
			} else {
				two += len(s.Gates)
			}
		}
		return
	}
	o1, t1 := count(staged.Stages)
	o2, t2 := count(recolorStages(staged))
	if o1 != o2 || t1 != t2 {
		t.Errorf("gate counts changed: (%d,%d) → (%d,%d)", o1, t1, o2, t2)
	}
	// Each recolored stage must still have disjoint qubits.
	for i, s := range recolorStages(staged) {
		seen := map[int]bool{}
		for _, g := range s.Gates {
			for _, q := range g.Qubits {
				if seen[q] {
					t.Fatalf("stage %d reuses qubit %d", i, q)
				}
				seen[q] = true
			}
		}
	}
}

func TestCapacityError(t *testing.T) {
	a := arch.Monolithic() // 100 sites
	staged := &circuit.Staged{Name: "big", NumQubits: 101}
	if _, err := Compile(staged, a); err == nil {
		t.Fatal("expected capacity error")
	}
}

func TestAllBenchmarksCompile(t *testing.T) {
	a := arch.Monolithic()
	for _, b := range bench.All() {
		staged := stage(t, b.Build())
		res, err := Compile(staged, a)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if res.Breakdown.Total < 0 || res.Breakdown.Total > 1 {
			t.Fatalf("%s: fidelity %v out of range", b.Name, res.Breakdown.Total)
		}
		if res.Duration <= 0 {
			t.Fatalf("%s: no duration", b.Name)
		}
	}
}
