package benchsuite

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"zac/internal/benchsuite/stats"
	"zac/internal/engine"
)

// SchemaVersion is the record schema stamped into every store line, bumped
// on incompatible Record changes so old stores stay readable (readers skip
// newer-versioned lines they do not understand).
const SchemaVersion = 1

// Record is one matrix cell measured at one commit on one machine: the full
// per-repetition ns/op sample vector plus everything needed to decide,
// later, whether it may be compared with another record at all.
type Record struct {
	// Schema is the record format version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// Case is the matrix cell name (Case.Name).
	Case string `json:"case"`
	// Kind is the cell's class (micro or compile).
	Kind Kind `json:"kind"`
	// Commit is the VCS revision of the measured tree.
	Commit string `json:"commit"`
	// UnixTime is the capture time in seconds (caller-supplied so replays
	// and tests are deterministic).
	UnixTime int64 `json:"unix_time"`
	// Machine is the full machine fingerprint; MachineID its digest, the
	// store shard key and the gate's comparability check.
	Machine   Fingerprint `json:"machine"`
	MachineID string      `json:"machine_id"`
	// ArchFP is the arch.Fingerprint of the targeted architecture ("" for
	// kernels without one).
	ArchFP string `json:"arch_fp,omitempty"`
	// Warmup and InnerIters record how the sample was taken: Warmup
	// discarded repetitions, InnerIters operations per timed repetition.
	Warmup     int `json:"warmup"`
	InnerIters int `json:"inner_iters"`
	// Procs is the effective runtime.GOMAXPROCS the cell ran under —
	// Case.Procs when the cell pinned it, the ambient value otherwise. The
	// gate refuses to compare records whose Procs differ, exactly like an
	// architecture-fingerprint change. omitempty keeps pre-existing store
	// lines (which carry no field, i.e. 0 = unknown) comparable with each
	// other.
	Procs int `json:"gomaxprocs,omitempty"`
	// NsPerOp holds one per-operation nanosecond sample per timed
	// repetition — the raw material of the Mann-Whitney gate.
	NsPerOp []float64 `json:"ns_per_op"`
}

// RunConfig controls one matrix execution.
type RunConfig struct {
	// Warmup is the number of untimed repetitions discarded before
	// sampling (default 1).
	Warmup int
	// Reps is the number of timed repetitions, i.e. the sample size per
	// cell (default 5 — the smallest the statistical gate accepts).
	Reps int
	// Workers bounds matrix-level parallelism through the engine pool.
	// The default 1 runs cells sequentially, the only configuration whose
	// timings are trustworthy; higher values are for smoke runs where
	// only plumbing is under test.
	Workers int
	// Commit stamps the records' VCS revision ("unknown" when empty).
	Commit string
	// Now stamps the records' capture time (time.Now when zero).
	Now time.Time
	// Handicap multiplies every recorded ns/op sample (0 or 1 = none).
	// It exists to self-test the regression gate: a run with -handicap 2
	// must be flagged against an unmodified baseline.
	Handicap float64
	// Progress, when non-nil, receives one line per completed cell.
	Progress func(format string, args ...any)
}

// normalized fills the config's defaults.
func (c RunConfig) normalized() RunConfig {
	if c.Warmup <= 0 {
		c.Warmup = 1
	}
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Commit == "" {
		c.Commit = "unknown"
	}
	if c.Now.IsZero() {
		c.Now = time.Now()
	}
	if c.Handicap == 0 {
		c.Handicap = 1
	}
	return c
}

// Run executes every case of the matrix under cfg and returns one Record
// per case, in matrix order regardless of scheduling (the engine assembles
// by index). Each record carries the process-wide machine fingerprint and
// cfg's commit stamp.
func Run(ctx context.Context, cases []Case, cfg RunConfig) ([]Record, error) {
	cfg = cfg.normalized()
	if cfg.Workers > 1 {
		// GOMAXPROCS is process-global: a Procs-pinning cell running next
		// to any other cell would silently distort both measurements.
		for _, c := range cases {
			if c.Procs > 0 {
				return nil, fmt.Errorf("benchsuite: case %s pins GOMAXPROCS; the matrix must run with Workers=1, got %d", c.Name, cfg.Workers)
			}
		}
	}
	fp := Machine()
	records, err := engine.Map(ctx, cfg.Workers, len(cases), func(i int) (Record, error) {
		rec, err := runCase(ctx, cases[i], cfg, fp)
		if err != nil {
			return Record{}, fmt.Errorf("benchsuite: %s: %w", cases[i].Name, err)
		}
		if cfg.Progress != nil {
			cfg.Progress("%-60s %3d reps  median %12.0f ns/op", rec.Case, len(rec.NsPerOp), stats.Median(rec.NsPerOp))
		}
		return rec, nil
	})
	if err != nil {
		return nil, err
	}
	return records, nil
}

// runCase sets up and times one cell: Warmup discarded repetitions, then
// Reps timed ones of InnerIters operations each.
func runCase(ctx context.Context, c Case, cfg RunConfig, fp Fingerprint) (Record, error) {
	op, err := c.setup()
	if err != nil {
		return Record{}, err
	}
	procs := runtime.GOMAXPROCS(0)
	if c.Procs > 0 && c.Procs != procs {
		prev := runtime.GOMAXPROCS(c.Procs)
		defer runtime.GOMAXPROCS(prev)
		procs = c.Procs
	}
	inner := c.InnerIters
	if inner <= 0 {
		inner = 1
	}
	for w := 0; w < cfg.Warmup; w++ {
		if err := opN(ctx, op, inner); err != nil {
			return Record{}, err
		}
	}
	samples := make([]float64, 0, cfg.Reps)
	for r := 0; r < cfg.Reps; r++ {
		if err := ctx.Err(); err != nil {
			return Record{}, err
		}
		start := time.Now()
		if err := opN(ctx, op, inner); err != nil {
			return Record{}, err
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(inner)
		samples = append(samples, ns*cfg.Handicap)
	}
	return Record{
		Schema:     SchemaVersion,
		Case:       c.Name,
		Kind:       c.Kind,
		Commit:     cfg.Commit,
		UnixTime:   cfg.Now.Unix(),
		Machine:    fp,
		MachineID:  fp.ID(),
		ArchFP:     c.ArchFP,
		Warmup:     cfg.Warmup,
		InnerIters: inner,
		Procs:      procs,
		NsPerOp:    samples,
	}, nil
}

// opN runs op n times, stopping at the first error.
func opN(ctx context.Context, op func(context.Context) error, n int) error {
	for i := 0; i < n; i++ {
		if err := op(ctx); err != nil {
			return err
		}
	}
	return nil
}
