package circuit

// Dependencies computes, for each gate index, the indices of the gates it
// directly depends on (the previous gate touching each of its qubits).
// Barrier gates act as full synchronization points on the qubits they guard
// (our barriers guard all qubits); Measure depends like a 1Q gate.
func Dependencies(c *Circuit) [][]int {
	deps := make([][]int, len(c.Gates))
	last := make([]int, c.NumQubits)
	for q := range last {
		last[q] = -1
	}
	for i, g := range c.Gates {
		if g.Kind == Barrier {
			for q := 0; q < c.NumQubits; q++ {
				if last[q] != -1 {
					deps[i] = appendUnique(deps[i], last[q])
				}
				last[q] = i
			}
			continue
		}
		for _, q := range g.Qubits {
			if last[q] != -1 {
				deps[i] = appendUnique(deps[i], last[q])
			}
			last[q] = i
		}
	}
	return deps
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// ASAPLevels assigns each gate its as-soon-as-possible level: level(g) =
// 1 + max over dependencies. Gates with no dependencies get level 0.
func ASAPLevels(c *Circuit) []int {
	deps := Dependencies(c)
	levels := make([]int, len(c.Gates))
	for i := range c.Gates {
		lv := 0
		for _, d := range deps[i] {
			if levels[d]+1 > lv {
				lv = levels[d] + 1
			}
		}
		levels[i] = lv
	}
	return levels
}

// RespectsDependencies reports whether order (a permutation of gate indices)
// lists every gate after all gates it depends on. Used by tests to validate
// schedules.
func RespectsDependencies(c *Circuit, order []int) bool {
	if len(order) != len(c.Gates) {
		return false
	}
	pos := make([]int, len(c.Gates))
	seen := make([]bool, len(c.Gates))
	for p, gi := range order {
		if gi < 0 || gi >= len(c.Gates) || seen[gi] {
			return false
		}
		seen[gi] = true
		pos[gi] = p
	}
	for i, ds := range Dependencies(c) {
		for _, d := range ds {
			if pos[d] >= pos[i] {
				return false
			}
		}
	}
	return true
}
