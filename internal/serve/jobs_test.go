package serve

import (
	"fmt"
	"testing"
)

// TestJobRetention verifies the job table stays bounded: finished jobs past
// the retention limit are evicted oldest-first, while the newest survive.
func TestJobRetention(t *testing.T) {
	s := New(Options{})
	const extra = 50
	for i := 0; i < maxRetainedJobs+extra; i++ {
		j := s.newJob(0)
		s.runJob(j, nil, "", false) // finishes immediately (empty batch → done)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) > maxRetainedJobs {
		t.Fatalf("job table holds %d entries, bound is %d", len(s.jobs), maxRetainedJobs)
	}
	if _, ok := s.jobs["job-1"]; ok {
		t.Error("oldest job survived past the retention bound")
	}
	newest := fmt.Sprintf("job-%d", maxRetainedJobs+extra)
	if _, ok := s.jobs[newest]; !ok {
		t.Errorf("newest job %s was evicted", newest)
	}
}
