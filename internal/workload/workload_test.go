package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"zac/internal/qasm"
	"zac/internal/sim"
)

// specCases covers every family at defaults plus parameterized variants.
func specCases() []string {
	var specs []string
	for _, fam := range Families() {
		specs = append(specs, fam)
	}
	specs = append(specs,
		"clifford:n=8,gates=60,t=30,seed=9",
		"rb:n=6,depth=5,seed=3",
		"shuffle:n=10,depth=4,seed=2",
		"qaoa:n=8,p=3,seed=5",
		"ising:n=9,layers=2",
		"hiqp:logblocks=2,rounds=2",
		"spec:rb:n=4,depth=3,seed=11",
	)
	return specs
}

func TestDeterminism(t *testing.T) {
	for _, spec := range specCases() {
		a, err := Build(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		b, err := Build(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two builds differ", spec)
		}
		qa, qb := qasm.Write(a), qasm.Write(b)
		if qa != qb {
			t.Errorf("%s: QASM emission differs across builds", spec)
		}
		// The emitted QASM must parse back to the same shape.
		back, err := qasm.Parse(qa)
		if err != nil {
			t.Errorf("%s: emitted QASM does not parse: %v", spec, err)
		} else if back.NumQubits != a.NumQubits || len(back.Gates) != len(a.Gates) {
			t.Errorf("%s: QASM round trip changed shape", spec)
		}
	}
}

// TestRNGStability pins the splitmix64 stream: the spec-as-cache-key
// contract requires the same bytes on every platform and toolchain.
func TestRNGStability(t *testing.T) {
	r := NewRNG(7)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	// splitmix64(seed=7) is fully specified; derive the expected stream from
	// the reference recurrence.
	want := make([]uint64, len(got))
	state := uint64(7)
	for i := range want {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		want[i] = z ^ (z >> 31)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stream[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestSeedChangesCircuit(t *testing.T) {
	for _, fam := range []string{"clifford", "rb", "shuffle", "qaoa"} {
		a, err := Build(fam + ":seed=1")
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(fam + ":seed=2")
		if err != nil {
			t.Fatal(err)
		}
		a.Name, b.Name = "", ""
		if reflect.DeepEqual(a, b) {
			t.Errorf("%s: seeds 1 and 2 produced identical circuits", fam)
		}
	}
}

func TestCanonicalSpec(t *testing.T) {
	s, err := Parse("RB: depth=5 , n=6")
	if err != nil {
		t.Fatal(err)
	}
	want := "rb:n=6,depth=5,seed=1"
	if got := s.Canonical(); got != want {
		t.Fatalf("canonical = %q, want %q", got, want)
	}
	// Parsing the canonical form is a fixed point.
	s2, err := Parse(s.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Canonical() != want {
		t.Fatalf("canonical not stable: %q", s2.Canonical())
	}
	// The generated circuit is named after the canonical spec.
	c, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != want {
		t.Fatalf("circuit name = %q, want %q", c.Name, want)
	}
}

func TestParseErrors(t *testing.T) {
	// Each case pins both that Parse rejects the spec and what the error
	// says — the messages are user-facing via `zac -circuit spec:` and
	// `zac-fuzz -spec`, so a regression here is a UX regression.
	cases := []struct {
		name, spec, wantErr string
	}{
		{"unknown family", "frobnicate:n=4", `unknown family "frobnicate"`},
		{"unknown param", "rb:bogus=4", `unknown parameter "bogus"`},
		{"bad int", "rb:n=four", `bad integer "four"`},
		{"below min", "rb:n=0", "out of range"},
		{"above max", "clifford:t=200", "out of range"},
		{"duplicate", "rb:n=4,n=5", `duplicate parameter "n"`},
		{"malformed", "rb:n", "malformed parameter"},
		{"empty", "", "empty spec"},
		{"empty family", ":n=4", "empty spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.spec)
			if err == nil {
				t.Fatalf("Parse(%q): expected error", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Parse(%q) error %q does not mention %q", tc.spec, err, tc.wantErr)
			}
		})
	}
}

func TestGateBudgetOverflow(t *testing.T) {
	// Budget enforcement happens at generation time (the closed-form
	// estimate runs before any gate is allocated), not at parse time: the
	// parameters individually sit within their schema bounds, only their
	// product blows the budget.
	cases := []string{
		"rb:n=2048,depth=2048",      // 2·depth·(n+n/2) ≈ 1.2e7 ≫ 2^18
		"shuffle:n=2048,depth=2048", // depth·(n+n/2)
		"ising:n=2048,layers=512",   // n + layers·2n ≈ 2.1e6
		"qaoa:n=2048,p=128",         // n + p·(n+3n/2) ≈ 6.6e5
	}
	for _, spec := range cases {
		t.Run(spec, func(t *testing.T) {
			s, err := Parse(spec)
			if err != nil {
				t.Fatalf("Parse(%q): %v (budget must reject at Generate, not Parse)", spec, err)
			}
			if _, err := s.Generate(); err == nil {
				t.Fatalf("Generate(%q): expected gate-budget error", spec)
			} else if !strings.Contains(err.Error(), "budget") {
				t.Errorf("Generate(%q) error %q does not mention the budget", spec, err)
			}
		})
	}
	// Just inside the budget still generates.
	s, err := Parse("ising:n=64,layers=6")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Generate(); err != nil {
		t.Errorf("in-budget spec rejected: %v", err)
	}
}

func TestRBMirrorIsIdentity(t *testing.T) {
	for _, spec := range []string{"rb:n=3,depth=4,seed=2", "rb:n=5,depth=6,seed=9", "rb:n=1,depth=3,seed=4"} {
		c, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if p := real(st.Amp[0])*real(st.Amp[0]) + imag(st.Amp[0])*imag(st.Amp[0]); math.Abs(p-1) > 1e-9 {
			t.Errorf("%s: |<0|ψ>|² = %v, want 1 (mirror must compose to identity)", spec, p)
		}
	}
}

func TestQAOADegree(t *testing.T) {
	c, err := Build("qaoa:n=16,p=1,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	deg := map[int]int{}
	for _, e := range c.TwoQubitEdges() {
		deg[e[0]]++
		deg[e[1]]++
	}
	for q := 0; q < c.NumQubits; q++ {
		if deg[q] != 3 {
			t.Fatalf("qubit %d degree %d, want 3", q, deg[q])
		}
	}
}

func TestRandom3RegularFallback(t *testing.T) {
	// n=4 has exactly three perfect matchings, so the union sampler
	// frequently collides; whatever path it takes must yield a simple
	// 3-regular graph.
	for seed := int64(0); seed < 10; seed++ {
		edges := random3Regular(4, NewRNG(seed))
		if len(edges) != 6 {
			t.Fatalf("seed %d: %d edges, want 6", seed, len(edges))
		}
	}
}

func TestHIQPBuildsOnFTQC(t *testing.T) {
	c, err := Build("hiqp:logblocks=3,rounds=2")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 8 {
		t.Fatalf("qubits = %d, want 8 blocks", c.NumQubits)
	}
	// One pass has log2(8)=3 CNOT layers of 4 CZs; two rounds double it.
	cz := 0
	for _, g := range c.Gates {
		if g.Is2Q() {
			cz++
		}
	}
	if cz != 2*3*4 {
		t.Fatalf("CZ count = %d, want 24", cz)
	}
}

func TestListMentionsEveryFamily(t *testing.T) {
	out := List()
	for _, fam := range Families() {
		if !strings.Contains(out, fam) {
			t.Errorf("List() missing family %s:\n%s", fam, out)
		}
	}
	if !strings.Contains(out, "seed") || !strings.Contains(out, "default") {
		t.Errorf("List() missing parameter schemas:\n%s", out)
	}
}

// TestGateBudget pins the product guard: per-parameter Max caps cannot
// bound n×depth, so oversized products must fail before allocating gates.
func TestGateBudget(t *testing.T) {
	for _, spec := range []string{
		"rb:n=2048,depth=2048",
		"shuffle:n=2048,depth=2048",
		"clifford:n=8,gates=200000", // above MaxSpecGates? gates cap is 200000 < budget — expect success
	} {
		_, err := Build(spec)
		switch spec {
		case "clifford:n=8,gates=200000":
			if err != nil {
				t.Errorf("%s: %v (within budget, should build)", spec, err)
			}
		default:
			if err == nil {
				t.Errorf("%s: expected gate-budget error", spec)
			}
		}
	}
	// Every family's worst per-parameter corner obeys some bound: either it
	// builds, or it fails with the budget error — never hangs or OOMs the
	// test by construction (spot-check the estimate math stays conservative).
	c, err := Build("rb:n=64,depth=64,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(c.Gates)) > MaxSpecGates {
		t.Fatalf("budget accepted %d gates", len(c.Gates))
	}
}

// TestQAOANormalization pins the even-width contract: odd n aliases to the
// even spec, one canonical string, one cache key.
func TestQAOANormalization(t *testing.T) {
	s, err := Parse("qaoa:n=9,p=1,seed=2")
	if err != nil {
		t.Fatal(err)
	}
	want := "qaoa:n=10,p=1,seed=2"
	if got := s.Canonical(); got != want {
		t.Fatalf("canonical = %q, want %q", got, want)
	}
	c, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 10 || c.Name != want {
		t.Fatalf("generated %q with %d qubits, want %q/10", c.Name, c.NumQubits, want)
	}
	even, err := Build(want)
	if err != nil {
		t.Fatal(err)
	}
	odd, err := Build("qaoa:n=9,p=1,seed=2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(even, odd) {
		t.Fatal("qaoa:n=9 and qaoa:n=10 must alias to one circuit")
	}
}

func TestIsSpec(t *testing.T) {
	for spec, want := range map[string]bool{
		"spec:rb:n=4":    true,
		"rb:n=4,depth=2": true,
		"shuffle":        true,
		"ghz_n23":        false,
		"bv_n14":         false,
	} {
		if got := IsSpec(spec); got != want {
			t.Errorf("IsSpec(%q) = %v, want %v", spec, got, want)
		}
	}
}
