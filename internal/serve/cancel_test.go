package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"
)

// TestCompileCancelledNotPoisoned is the client-disconnect bugfix contract:
// a cancelled request context reaches the pipeline and aborts the compile,
// and the cancellation is not memoized — the next identical request
// compiles successfully.
func TestCompileCancelledNotPoisoned(t *testing.T) {
	s := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := CompileRequest{Circuit: "bv_n14"}
	if _, _, err := s.compileOne(ctx, req, "", false); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	res, _, err := s.compileOne(context.Background(), req, "", false)
	if err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if res.Cached {
		t.Error("retry served a cached result; the cancellation was memoized")
	}
}

// TestCompilerSelection exercises the registry seam end to end: the
// ?compiler= query default, the per-request "compiler" field overriding it,
// and the legacy "setting" field resolving through the alias table.
func TestCompilerSelection(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	cases := []struct {
		name, url, body string
		wantCompiler    string
		wantSetting     string
	}{
		{"query default", ts.URL + "/v1/compile?compiler=enola&zair=0", `{"circuit":"bv_n14"}`, "enola", "enola"},
		{"field overrides query", ts.URL + "/v1/compile?compiler=enola&zair=0", `{"circuit":"bv_n14","compiler":"nalac"}`, "nalac", "nalac"},
		{"setting alias", ts.URL + "/v1/compile?zair=0", `{"circuit":"bv_n14","setting":"dynPlace"}`, "zac-dynplace", "dynPlace"},
		{"default zac", ts.URL + "/v1/compile?zair=0", `{"circuit":"bv_n14"}`, "zac", "SA+dynPlace+reuse"},
	}
	for _, tc := range cases {
		status, body := do(t, "POST", tc.url, tc.body)
		if status != http.StatusOK {
			t.Fatalf("%s: status = %d: %s", tc.name, status, body)
		}
		var resp CompileResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Compiler != tc.wantCompiler || resp.Setting != tc.wantSetting {
			t.Errorf("%s: compiler/setting = %s/%s, want %s/%s",
				tc.name, resp.Compiler, resp.Setting, tc.wantCompiler, tc.wantSetting)
		}
	}
}

// TestJobCancel covers DELETE /v1/jobs/{id}: an async job cancelled right
// after submission ends in the canceled state, its remaining compilations
// stop, and the state survives job completion.
func TestJobCancel(t *testing.T) {
	// One worker so the queue drains slowly enough that the DELETE
	// deterministically lands before the job finishes.
	_, ts := newTestServer(t, Options{Parallel: 1})
	req := `{"async":true,"requests":[
		{"circuit":"qft_n18"},{"circuit":"ising_n42"},{"circuit":"wstate_n27"},
		{"circuit":"ghz_n23"},{"circuit":"bv_n14"}
	]}`
	status, body := do(t, "POST", ts.URL+"/v1/compile?zair=0", req)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", status, body)
	}
	var sub JobResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	status, body = do(t, "DELETE", ts.URL+"/v1/jobs/"+sub.ID, "")
	if status != http.StatusOK {
		t.Fatalf("cancel status = %d: %s", status, body)
	}
	var cancelled JobResponse
	if err := json.Unmarshal(body, &cancelled); err != nil {
		t.Fatal(err)
	}
	if cancelled.Status != JobCanceled {
		t.Fatalf("status after DELETE = %s, want %s", cancelled.Status, JobCanceled)
	}

	// The job still drains (items finish as successes or cancellations) but
	// the canceled state is final.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body = do(t, "GET", ts.URL+"/v1/jobs/"+sub.ID, "")
		var jr JobResponse
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatal(err)
		}
		if jr.Status != JobCanceled {
			t.Fatalf("job left the canceled state: %s", jr.Status)
		}
		if jr.Completed == jr.Total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never drained")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if status, _ := do(t, "DELETE", ts.URL+"/v1/jobs/job-999", ""); status != http.StatusNotFound {
		t.Errorf("unknown job DELETE status = %d, want 404", status)
	}
}
