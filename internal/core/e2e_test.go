package core

import (
	"math"
	"math/rand"
	"testing"

	"zac/internal/arch"
	"zac/internal/circuit"
	"zac/internal/geom"
	"zac/internal/place"
	"zac/internal/resynth"
	"zac/internal/zair"
)

// resynthNativeCCZ stages a circuit keeping CCZ native.
func resynthNativeCCZ(c *circuit.Circuit) (*circuit.Staged, error) {
	return resynth.PreprocessNativeCCZ(c)
}

// randomCircuit builds a random circuit over the input-level vocabulary.
func randomCircuit(r *rand.Rand, numQubits, numGates int) *circuit.Circuit {
	c := circuit.New("rand", numQubits)
	kinds1 := []circuit.Kind{circuit.H, circuit.X, circuit.T, circuit.RZ, circuit.RY}
	kinds2 := []circuit.Kind{circuit.CX, circuit.CZ, circuit.CP, circuit.RZZ, circuit.SWAP}
	for i := 0; i < numGates; i++ {
		if r.Float64() < 0.4 {
			k := kinds1[r.Intn(len(kinds1))]
			var params []float64
			for p := 0; p < k.NumParams(); p++ {
				params = append(params, (r.Float64()-0.5)*2*math.Pi)
			}
			c.Append(k, []int{r.Intn(numQubits)}, params...)
		} else {
			k := kinds2[r.Intn(len(kinds2))]
			perm := r.Perm(numQubits)
			var params []float64
			for p := 0; p < k.NumParams(); p++ {
				params = append(params, (r.Float64()-0.5)*2*math.Pi)
			}
			c.Append(k, perm[:2], params...)
		}
	}
	return c
}

// resolverFor adapts an architecture to the ZAIR verifier.
func resolverFor(a *arch.Architecture) zair.PosResolver {
	return func(slmID, row, col int) (geom.Point, error) {
		for _, zs := range [][]arch.Zone{a.Storage, a.Entanglement} {
			for _, z := range zs {
				for _, s := range z.SLMs {
					if s.ID == slmID && s.InRange(row, col) {
						return s.TrapPos(row, col), nil
					}
				}
			}
		}
		return geom.Point{}, errUnknownLoc
	}
}

type unknownLocErr struct{}

func (unknownLocErr) Error() string { return "unknown SLM location" }

var errUnknownLoc = unknownLocErr{}

// TestEndToEndRandomCircuits is the repository's strongest property test:
// random circuits, every ablation setting plus advanced reuse, every
// compiled program must satisfy the full physical verifier and the
// bookkeeping invariants.
func TestEndToEndRandomCircuits(t *testing.T) {
	r := rand.New(rand.NewSource(2025))
	a := arch.Reference()
	v := &zair.Verifier{Resolve: resolverFor(a)}

	settings := []Options{
		OptionsFor(SettingVanilla),
		OptionsFor(SettingDynPlace),
		OptionsFor(SettingDynPlaceReuse),
		OptionsFor(SettingSADynPlaceReuse),
		{Place: func() place.Options {
			o := place.Default()
			o.AdvancedReuse = true
			return o
		}()},
	}

	for iter := 0; iter < 12; iter++ {
		n := 4 + r.Intn(20)
		g := 10 + r.Intn(60)
		c := randomCircuit(r, n, g)
		for si, opts := range settings {
			res, err := Compile(c, a, opts)
			if err != nil {
				t.Fatalf("iter %d setting %d: %v", iter, si, err)
			}
			if err := res.Plan.Validate(); err != nil {
				t.Fatalf("iter %d setting %d: plan: %v", iter, si, err)
			}
			if err := v.Verify(res.Program); err != nil {
				t.Fatalf("iter %d setting %d: program: %v", iter, si, err)
			}
			if res.Breakdown.Total < 0 || res.Breakdown.Total > 1 {
				t.Fatalf("iter %d setting %d: fidelity %v", iter, si, res.Breakdown.Total)
			}
			if res.Stats.Transfers != 2*res.TotalMoves {
				t.Fatalf("iter %d setting %d: transfers %d != 2×moves %d",
					iter, si, res.Stats.Transfers, res.TotalMoves)
			}
			if res.Stats.Excited != 0 {
				t.Fatalf("iter %d setting %d: ZAC excited %d qubits", iter, si, res.Stats.Excited)
			}
			// Busy time can never exceed total duration per qubit.
			for q, busy := range res.Stats.Busy {
				if busy > res.Stats.Duration+1e-6 {
					t.Fatalf("iter %d setting %d: qubit %d busy %v > duration %v",
						iter, si, q, busy, res.Stats.Duration)
				}
			}
		}
	}
}

// TestEndToEndNativeCCZ compiles Toffoli-heavy random circuits on the
// three-trap-site architecture and verifies the programs physically.
func TestEndToEndNativeCCZ(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	a := arch.ReferenceTriple()
	v := &zair.Verifier{Resolve: resolverFor(a)}
	for iter := 0; iter < 5; iter++ {
		n := 6 + r.Intn(10)
		c := circuit.New("ccz_rand", n)
		for g := 0; g < 25; g++ {
			switch r.Intn(3) {
			case 0:
				c.Append(circuit.H, []int{r.Intn(n)})
			case 1:
				perm := r.Perm(n)
				c.Append(circuit.CZ, perm[:2])
			default:
				perm := r.Perm(n)
				c.Append(circuit.CCX, perm[:3])
			}
		}
		staged, err := resynthNativeCCZ(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CompileStaged(staged, a, Default())
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := res.Plan.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := v.Verify(res.Program); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if res.Stats.Excited != 0 {
			t.Fatalf("iter %d: excitation on zoned architecture", iter)
		}
	}
}

// TestEndToEndMultiZoneMultiAOD exercises the remaining architecture
// dimensions together: two entanglement zones and multiple AODs.
func TestEndToEndMultiZoneMultiAOD(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := arch.WithAODs(arch.Arch2TwoZones(), 3)
	v := &zair.Verifier{Resolve: resolverFor(a)}
	for iter := 0; iter < 6; iter++ {
		c := randomCircuit(r, 10+r.Intn(30), 40)
		res, err := Compile(c, a, Default())
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := v.Verify(res.Program); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}
