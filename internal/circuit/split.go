package circuit

// SplitRydbergStages returns a copy of s in which every Rydberg stage holds
// at most maxGates gates, splitting oversized stages into consecutive
// chunks. The compiler uses this when a stage's parallelism exceeds the
// architecture's Rydberg-site count (e.g. the 64-CNOT hIQP layers on a
// 15-site logical architecture, paper §VIII).
func SplitRydbergStages(s *Staged, maxGates int) *Staged {
	if maxGates <= 0 {
		return s
	}
	out := &Staged{Name: s.Name, NumQubits: s.NumQubits}
	for _, st := range s.Stages {
		if st.Kind != RydbergStage || len(st.Gates) <= maxGates {
			out.Stages = append(out.Stages, st)
			continue
		}
		for i := 0; i < len(st.Gates); i += maxGates {
			end := i + maxGates
			if end > len(st.Gates) {
				end = len(st.Gates)
			}
			out.Stages = append(out.Stages, Stage{Kind: RydbergStage, Gates: st.Gates[i:end]})
		}
	}
	return out
}
