package experiments

import (
	"context"
	"strings"
	"testing"
)

// tinyForgeSpecs keeps the forge tests fast while covering several families.
var tinyForgeSpecs = []string{
	"rb:n=8,depth=4,seed=2",
	"shuffle:n=10,depth=3,seed=2",
	"hiqp:logblocks=2,rounds=1",
}

func TestForgeSweep(t *testing.T) {
	tables, err := Forge(context.Background(), Sequential(), tinyForgeSpecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want fidelity+duration", len(tables))
	}
	fid := tables[0]
	if len(fid.Rows) != len(tinyForgeSpecs) {
		t.Fatalf("rows = %d, want %d", len(fid.Rows), len(tinyForgeSpecs))
	}
	for _, r := range fid.Rows {
		if !strings.Contains(r.Circuit, ":") {
			t.Errorf("row label %q is not a canonical spec", r.Circuit)
		}
		for _, col := range forgeCols {
			v, ok := r.Values[col]
			if !ok {
				t.Fatalf("%s: missing column %s", r.Circuit, col)
			}
			if v <= 0 || v > 1 {
				t.Errorf("%s/%s: fidelity %g outside (0,1]", r.Circuit, col, v)
			}
		}
	}
}

// TestForgeSpecsNormalize checks sweep rows are labeled by canonical specs
// (the compile cache key), however the spec was spelled.
func TestForgeSpecsNormalize(t *testing.T) {
	tables, err := Forge(context.Background(), Sequential(), []string{"spec:rb:depth=4,n=8,seed=2"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tables[0].Rows[0].Circuit, "rb:n=8,depth=4,seed=2"; got != want {
		t.Fatalf("row %q, want canonical %q", got, want)
	}
}

// TestSuiteAcceptsSpecs checks any experiment subset resolves workload specs
// alongside static benchmark names.
func TestSuiteAcceptsSpecs(t *testing.T) {
	benches, err := suite([]string{"bv_n14", "rb:n=8,depth=4,seed=2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("benches = %d", len(benches))
	}
	if benches[1].Name != "rb:n=8,depth=4,seed=2" || benches[1].NumQubits != 8 {
		t.Fatalf("spec entry = %+v", benches[1])
	}
	// Deterministic rebuilds: two Build calls agree.
	a, b := benches[1].Build(), benches[1].Build()
	if len(a.Gates) != len(b.Gates) || a.NumQubits != b.NumQubits {
		t.Fatal("spec benchmark rebuilds differ")
	}
	if _, err := suite([]string{"rb:bogus=1"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestForgeSkipsNonSpecSubset pins the `-experiment all -circuits bv_n14`
// path: static benchmark names are skipped, not errors, and an all-static
// subset yields empty tables instead of compiling the default spec sweep.
func TestForgeSkipsNonSpecSubset(t *testing.T) {
	tables, err := Forge(context.Background(), Sequential(), []string{"bv_n14", "rb:n=6,depth=3,seed=2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 1 || tables[0].Rows[0].Circuit != "rb:n=6,depth=3,seed=2" {
		t.Fatalf("rows = %+v, want just the spec entry", tables[0].Rows)
	}
	tables, err = Forge(context.Background(), Sequential(), []string{"bv_n14"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 0 {
		t.Fatalf("all-static subset produced %d rows, want 0", len(tables[0].Rows))
	}
}

func TestForgeDefaultSpecsValid(t *testing.T) {
	for _, s := range defaultForgeSpecs() {
		if _, err := forgeBenchmark(s); err != nil {
			t.Errorf("default spec %q: %v", s, err)
		}
	}
}
