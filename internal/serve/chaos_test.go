package serve

// Chaos tests: pinned-seed fault schedules from internal/faultinject driven
// through the public HTTP surface. Each test asserts a resilience invariant —
// overload sheds with 429 + Retry-After, deadlines map to 504, accepted async
// jobs survive restarts via the journal, disk faults degrade the cache to
// memory-only without corrupting responses — rather than any particular
// interleaving, so they stay deterministic under scheduling noise.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"zac/internal/engine"
	"zac/internal/faultinject"
)

// chaosSeed pins every schedule in this file; rerunning with the same seed
// reproduces the same faults.
const chaosSeed = 0x5EED

// newChaosServer starts a server whose request contexts carry the fault
// plan, so pass-boundary faults fire inside synchronous compilations.
func newChaosServer(t *testing.T, opts Options, plan *faultinject.Plan) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	h := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(w, r.WithContext(faultinject.With(r.Context(), plan)))
	}))
	t.Cleanup(ts.Close)
	return s, ts
}

// doFull is do plus response headers, for Retry-After assertions.
func doFull(t *testing.T, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// chaosBody builds a single-compile request body with a distinct cache key.
func chaosBody(name string) string {
	return `{"qasm":` + strconv(tinyQASM) + `,"name":"` + name + `"}`
}

// fastRetryPolicy mirrors the engine test policy: no real backoff sleeps, a
// two-failure breaker threshold, a short reprobe.
func fastRetryPolicy() engine.RetryPolicy {
	return engine.RetryPolicy{
		Attempts:      2,
		BaseDelay:     time.Microsecond,
		FailThreshold: 2,
		Reprobe:       20 * time.Millisecond,
		Sleep:         func(time.Duration) {},
	}
}

// TestChaosSaturationSheds saturates a 1-slot, 1-queue server with slow
// compilations and asserts the overflow is shed with 429 + Retry-After while
// admitted requests still succeed.
func TestChaosSaturationSheds(t *testing.T) {
	plan := faultinject.NewPlan(chaosSeed,
		faultinject.Rule{Point: "pass.validate", Prob: 1, Kind: faultinject.KindLatency, Latency: 300 * time.Millisecond})
	s, ts := newChaosServer(t, Options{Parallel: 1, QueueDepth: 1}, plan)

	// Occupy the single compile slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if status, _, body := doFull(t, "POST", ts.URL+"/v1/compile?zair=0", chaosBody("slot")); status != http.StatusOK {
			t.Errorf("slot holder: status %d: %s", status, body)
		}
	}()
	time.Sleep(100 * time.Millisecond) // let it reach the semaphore

	// Three more distinct compilations: one queues, two must shed.
	type outcome struct {
		status     int
		retryAfter string
	}
	results := make(chan outcome, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, hdr, _ := doFull(t, "POST", ts.URL+"/v1/compile?zair=0", chaosBody(fmt.Sprintf("burst-%d", i)))
			results <- outcome{status, hdr.Get("Retry-After")}
		}(i)
	}
	wg.Wait()
	close(results)

	var ok, shed int
	for r := range results {
		switch r.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if r.retryAfter != "1" {
				t.Errorf("shed response Retry-After = %q, want \"1\"", r.retryAfter)
			}
		default:
			t.Errorf("unexpected status %d", r.status)
		}
	}
	if ok != 1 || shed != 2 {
		t.Fatalf("burst outcomes: %d ok, %d shed; want 1 ok, 2 shed", ok, shed)
	}
	m := s.Metrics()
	if m.Admission.Shed != 2 {
		t.Fatalf("metrics shed = %d, want 2", m.Admission.Shed)
	}
	if m.Admission.QueueLimit != 1 {
		t.Fatalf("metrics queue_limit = %d, want 1", m.Admission.QueueLimit)
	}
}

// TestChaosShedNotMemoized verifies an overload rejection is never cached
// against the key: the same request succeeds once load clears.
func TestChaosShedNotMemoized(t *testing.T) {
	plan := faultinject.NewPlan(chaosSeed,
		faultinject.Rule{Point: "pass.validate", Prob: 1, Kind: faultinject.KindLatency, Latency: 250 * time.Millisecond})
	_, ts2 := newChaosServer(t, Options{Parallel: 1, QueueDepth: 1}, plan)

	var wg sync.WaitGroup
	for _, name := range []string{"hold", "queue"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			doFull(t, "POST", ts2.URL+"/v1/compile?zair=0", chaosBody(name))
		}(name)
		time.Sleep(60 * time.Millisecond)
	}
	status, _, _ := doFull(t, "POST", ts2.URL+"/v1/compile?zair=0", chaosBody("victim"))
	if status != http.StatusTooManyRequests {
		t.Fatalf("victim status = %d, want 429", status)
	}
	wg.Wait()

	// Load cleared: the identical request must now compile, proving the 429
	// was not memoized under the cache key.
	status, _, body := doFull(t, "POST", ts2.URL+"/v1/compile?zair=0", chaosBody("victim"))
	if status != http.StatusOK {
		t.Fatalf("victim retry status = %d: %s", status, body)
	}
}

// TestChaosDeadline asserts a request-level timeout_ms surfaces as 504 and
// is counted, while the same request without a deadline succeeds.
func TestChaosDeadline(t *testing.T) {
	plan := faultinject.NewPlan(chaosSeed,
		faultinject.Rule{Point: "pass.validate", Prob: 1, Kind: faultinject.KindLatency, Latency: 400 * time.Millisecond})
	s, ts := newChaosServer(t, Options{}, plan)

	body := `{"qasm":` + strconv(tinyQASM) + `,"name":"deadline","timeout_ms":50}`
	status, _, resp := doFull(t, "POST", ts.URL+"/v1/compile?zair=0", body)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d: %s", status, resp)
	}
	if !strings.Contains(string(resp), "deadline of 50 ms exceeded") {
		t.Fatalf("body = %s", resp)
	}
	if m := s.Metrics(); m.Admission.DeadlineExceeded != 1 {
		t.Fatalf("deadline_exceeded = %d, want 1", m.Admission.DeadlineExceeded)
	}

	// No deadline: the slow compile completes.
	status, _, resp = doFull(t, "POST", ts.URL+"/v1/compile?zair=0", chaosBody("deadline"))
	if status != http.StatusOK {
		t.Fatalf("undeadlined status = %d: %s", status, resp)
	}
}

// TestChaosReadyzAndDrain walks the shutdown sequence: ready, then draining
// (503 everywhere new work could enter), then Drain returns once jobs stop.
func TestChaosReadyzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	if status, _ := do(t, "GET", ts.URL+"/readyz", ""); status != http.StatusOK {
		t.Fatalf("readyz before drain = %d", status)
	}

	// An async job in flight when the drain starts must still finish.
	status, body := do(t, "POST", ts.URL+"/v1/compile?zair=0",
		`{"requests":[`+chaosBody("drainee")+`],"async":true}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", status, body)
	}
	var job JobResponse
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	status, hdr, resp := doFull(t, "GET", ts.URL+"/readyz", "")
	_ = hdr
	if status != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d: %s", status, resp)
	}
	status, hdr, resp = doFull(t, "POST", ts.URL+"/v1/compile", chaosBody("late"))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("compile during drain = %d: %s", status, resp)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("draining rejection missing Retry-After")
	}

	// The drained job reached a terminal state with its results intact.
	status, body = do(t, "GET", ts.URL+"/v1/jobs/"+job.ID, "")
	if status != http.StatusOK {
		t.Fatalf("job poll = %d", status)
	}
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.Status != JobDone {
		t.Fatalf("drained job status = %q, want done", job.Status)
	}
	if m := s.Metrics(); !m.Admission.Draining {
		t.Fatal("metrics do not report draining")
	}
}

// TestChaosJournalLifecycle pins the journal's durability window: the record
// exists on disk the whole time the job is pending/running (here: stuck
// behind a saturated compile slot) and is gone once the job is done.
func TestChaosJournalLifecycle(t *testing.T) {
	plan := faultinject.NewPlan(chaosSeed,
		faultinject.Rule{Point: "pass.validate", Prob: 1, Kind: faultinject.KindLatency, Latency: 300 * time.Millisecond})
	dir := t.TempDir()
	s, ts := newChaosServer(t, Options{Parallel: 1}, plan)
	if _, err := s.OpenJournal(dir); err != nil {
		t.Fatal(err)
	}

	// Saturate the only compile slot so the async job cannot finish yet.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		doFull(t, "POST", ts.URL+"/v1/compile?zair=0", chaosBody("slot"))
	}()
	time.Sleep(100 * time.Millisecond)

	status, body := do(t, "POST", ts.URL+"/v1/compile?zair=0",
		`{"requests":[`+chaosBody("journaled")+`],"async":true}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", status, body)
	}
	var job JobResponse
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	record := filepath.Join(dir, job.ID+".json")
	if _, err := os.Stat(record); err != nil {
		t.Fatalf("journal record missing while job in flight: %v", err)
	}

	wg.Wait()
	waitJob(t, ts.URL, job.ID, JobDone)
	// Removal happens just after the terminal state becomes visible.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := os.Stat(record); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("journal record not removed after job completion")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosJournalReplay simulates the crash: journal records left by a dead
// process — one healthy, one torn — are replayed on the next start. The
// healthy job re-runs to completion under its original id; the torn one is
// registered as interrupted instead of vanishing.
func TestChaosJournalReplay(t *testing.T) {
	dir := t.TempDir()
	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	err = jl.record(journalEntry{
		ID:       "job-3",
		Requests: []CompileRequest{{QASM: tinyQASM, Name: "replayed"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A record torn mid-write by the crash (no temp+rename — the damage is
	// the point).
	if err := os.WriteFile(filepath.Join(dir, "job-9.json"), []byte(`{"id":"job-9","requ`), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Options{})
	n, err := s.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d jobs, want 1", n)
	}

	job := waitJob(t, ts.URL, "job-3", JobDone)
	if len(job.Results) != 1 || job.Results[0].Result == nil {
		t.Fatalf("replayed job results: %+v", job.Results)
	}
	if got := job.Results[0].Result.Name; got != "replayed" {
		t.Fatalf("replayed program name = %q", got)
	}

	status, body := do(t, "GET", ts.URL+"/v1/jobs/job-9", "")
	if status != http.StatusOK {
		t.Fatalf("interrupted job poll = %d", status)
	}
	var torn JobResponse
	if err := json.Unmarshal(body, &torn); err != nil {
		t.Fatal(err)
	}
	if torn.Status != JobInterrupted {
		t.Fatalf("torn job status = %q, want interrupted", torn.Status)
	}

	// jobSeq advanced past every recovered id: new jobs never collide.
	if j := s.newJob(1); j.id != "job-10" {
		t.Fatalf("next job id = %q, want job-10", j.id)
	}
	if m := s.Metrics(); m.JobsReplayed != 1 {
		t.Fatalf("jobs_replayed = %d, want 1", m.JobsReplayed)
	}
}

// TestChaosBreakerMemoryOnly injects persistent disk-tier I/O errors under a
// serving cache and asserts the degradation contract: the breaker opens, the
// service keeps compiling (memory-only) with responses byte-identical to a
// fault-free server, and the disk tier re-attaches when the faults stop.
func TestChaosBreakerMemoryOnly(t *testing.T) {
	plan := faultinject.NewPlan(chaosSeed)
	disk, err := engine.OpenDiskCacheFS(t.TempDir(), 0, faultinject.WrapFS(engine.OSFS, plan))
	if err != nil {
		t.Fatal(err)
	}
	disk.SetRetryPolicy(fastRetryPolicy())
	s, ts := newChaosServer(t, Options{Disk: disk}, plan)
	_, clean := newTestServer(t, Options{})

	compile := func(base, name string) []byte {
		t.Helper()
		status, _, body := doFull(t, "POST", base+"/v1/compile", chaosBody(name))
		if status != http.StatusOK {
			t.Fatalf("compile %s = %d: %s", name, status, body)
		}
		return compileMSRe.ReplaceAll(body, []byte(`"compile_ms": 0`))
	}

	// Disk dies: every read and staged write errors.
	plan.Add(
		faultinject.Rule{Point: faultinject.PointReadFile, Prob: 1, Kind: faultinject.KindError},
		faultinject.Rule{Point: faultinject.PointCreateTemp, Prob: 1, Kind: faultinject.KindError},
	)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("degraded-%d", i)
		got := compile(ts.URL, name)
		want := compile(clean.URL, name)
		if string(got) != string(want) {
			t.Fatalf("response under disk faults differs from fault-free run:\n--- faulty ---\n%s\n--- clean ---\n%s", got, want)
		}
	}
	m := s.Metrics()
	if m.Cache.BreakerState != engine.BreakerOpen {
		t.Fatalf("breaker state = %q, want open (metrics: %+v)", m.Cache.BreakerState, m.Cache)
	}
	if m.Cache.BreakerOpens == 0 || m.Cache.DiskFailures == 0 {
		t.Fatalf("breaker counters missing: %+v", m.Cache)
	}

	// Disk recovers: after the reprobe window the tier starts persisting
	// again and responses stay identical.
	plan.SetEnabled(false)
	time.Sleep(fastRetryPolicy().Reprobe + 20*time.Millisecond)
	name := "recovered"
	if got, want := compile(ts.URL, name), compile(clean.URL, name); string(got) != string(want) {
		t.Fatalf("post-recovery response differs:\n%s\nvs\n%s", got, want)
	}
	m = s.Metrics()
	if m.Cache.BreakerState != engine.BreakerClosed {
		t.Fatalf("breaker did not close: %+v", m.Cache)
	}
	if m.Cache.DiskEntries == 0 {
		t.Fatalf("recovered disk tier holds no entries: %+v", m.Cache)
	}
}

// waitJob polls a job until it reaches want (or any terminal state) and
// returns the final response.
func waitJob(t *testing.T, base, id string, want JobStatus) JobResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, body := do(t, "GET", base+"/v1/jobs/"+id, "")
		if status != http.StatusOK {
			t.Fatalf("job %s poll = %d: %s", id, status, body)
		}
		var job JobResponse
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		switch job.Status {
		case want:
			return job
		case JobPending, JobRunning:
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %q", id, job.Status)
			}
			time.Sleep(20 * time.Millisecond)
		default:
			t.Fatalf("job %s reached %q, want %q (results: %+v)", id, job.Status, want, job.Results)
		}
	}
}
