package bench

import (
	"fmt"
	"math"
	"math/rand"

	"zac/internal/circuit"
)

// Extra workloads beyond the paper's Fig. 8 suite: the algorithm families
// the paper's introduction motivates (optimization, chemistry ansätze,
// error-corrected Clifford workloads). They feed the `workloads` extension
// experiment and provide additional structural diversity for tests: QAOA has
// bounded-degree parallel interaction graphs, the VQE ansatz is a dense
// brick pattern, the 2D Ising model exercises grid locality, and random
// Clifford circuits are unstructured.

// QAOA builds a depth-p QAOA circuit on a random 3-regular graph with n
// vertices (n even): per round, RZZ on every edge then RX mixers.
func QAOA(n, p int, seed int64) *circuit.Circuit {
	if n%2 != 0 {
		n++
	}
	r := rand.New(rand.NewSource(seed))
	edges := random3Regular(n, r)
	c := circuit.New(fmt.Sprintf("qaoa_n%d_p%d", n, p), n)
	for q := 0; q < n; q++ {
		c.Append(circuit.H, []int{q})
	}
	for round := 0; round < p; round++ {
		gamma := 0.3 + 0.1*float64(round)
		beta := 0.7 - 0.1*float64(round)
		for _, e := range edges {
			c.Append(circuit.RZZ, []int{e[0], e[1]}, 2*gamma)
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.RX, []int{q}, 2*beta)
		}
	}
	return c
}

// random3Regular samples a 3-regular simple graph by repeated perfect
// matchings (union of three disjoint matchings; retry on collisions).
func random3Regular(n int, r *rand.Rand) [][2]int {
	for {
		seen := map[[2]int]bool{}
		var edges [][2]int
		ok := true
		for m := 0; m < 3 && ok; m++ {
			perm := r.Perm(n)
			for i := 0; i+1 < n; i += 2 {
				a, b := perm[i], perm[i+1]
				if a > b {
					a, b = b, a
				}
				k := [2]int{a, b}
				if seen[k] {
					ok = false
					break
				}
				seen[k] = true
				edges = append(edges, k)
			}
		}
		if ok {
			return edges
		}
	}
}

// VQE builds a hardware-efficient ansatz: layers of RY rotations followed
// by a CZ brick pattern (the standard two-local circuit).
func VQE(n, layers int, seed int64) *circuit.Circuit {
	r := rand.New(rand.NewSource(seed))
	c := circuit.New(fmt.Sprintf("vqe_n%d_l%d", n, layers), n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.Append(circuit.RY, []int{q}, (r.Float64()-0.5)*math.Pi)
		}
		start := l % 2
		for i := start; i+1 < n; i += 2 {
			c.Append(circuit.CZ, []int{i, i + 1})
		}
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.RY, []int{q}, (r.Float64()-0.5)*math.Pi)
	}
	return c
}

// Ising2D builds one Trotter layer of the transverse-field Ising model on a
// rows×cols grid: RZZ on every horizontal and vertical bond plus RX fields.
func Ising2D(rows, cols int) *circuit.Circuit {
	n := rows * cols
	id := func(r, c int) int { return r*cols + c }
	c := circuit.New(fmt.Sprintf("ising2d_%dx%d", rows, cols), n)
	for q := 0; q < n; q++ {
		c.Append(circuit.H, []int{q})
	}
	const dt, j, h = 0.1, 1.0, 0.7
	for rr := 0; rr < rows; rr++ {
		for cc := 0; cc+1 < cols; cc++ {
			c.Append(circuit.RZZ, []int{id(rr, cc), id(rr, cc+1)}, 2*j*dt)
		}
	}
	for rr := 0; rr+1 < rows; rr++ {
		for cc := 0; cc < cols; cc++ {
			c.Append(circuit.RZZ, []int{id(rr, cc), id(rr+1, cc)}, 2*j*dt)
		}
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.RX, []int{q}, 2*h*dt)
	}
	return c
}

// RandomClifford builds an unstructured Clifford circuit: uniformly random
// H/S/CX gates, the workload class of randomized benchmarking and many
// error-correction subroutines.
func RandomClifford(n, gates int, seed int64) *circuit.Circuit {
	r := rand.New(rand.NewSource(seed))
	c := circuit.New(fmt.Sprintf("clifford_n%d_g%d", n, gates), n)
	for i := 0; i < gates; i++ {
		switch r.Intn(3) {
		case 0:
			c.Append(circuit.H, []int{r.Intn(n)})
		case 1:
			c.Append(circuit.S, []int{r.Intn(n)})
		default:
			perm := r.Perm(n)
			c.Append(circuit.CX, perm[:2])
		}
	}
	return c
}

// ExtraAll returns the extension workloads at paper-comparable sizes.
func ExtraAll() []Benchmark {
	return []Benchmark{
		{Name: "qaoa_n32_p2", NumQubits: 32,
			Build: func() *circuit.Circuit { return QAOA(32, 2, 11) }},
		{Name: "vqe_n24_l6", NumQubits: 24,
			Build: func() *circuit.Circuit { return VQE(24, 6, 13) }},
		{Name: "ising2d_6x8", NumQubits: 48,
			Build: func() *circuit.Circuit { return Ising2D(6, 8) }},
		{Name: "clifford_n30_g200", NumQubits: 30,
			Build: func() *circuit.Circuit { return RandomClifford(30, 200, 17) }},
	}
}
