package difftest

import (
	"context"
	"fmt"
	"sort"

	"zac/internal/circuit"
	"zac/internal/cover"
	"zac/internal/workload"
)

// LoopOptions configures a coverage-guided fuzzing run.
type LoopOptions struct {
	// Seeds are the starting workload specs (canonical or parseable form);
	// empty selects workload.SmokeSpecs().
	Seeds []string
	// ExtraSeeds are QASM circuits (e.g. the repro corpus) added to the
	// seed pool alongside the spec seeds.
	ExtraSeeds []*circuit.Circuit
	// Iterations is the number of mutated inputs to generate and check
	// after the seeds; 0 checks the seeds only.
	Iterations int
	// Seed seeds the mutation RNG; the same seed and options replay the
	// same run exactly.
	Seed int64
}

// LoopResult is a fuzzing run's report.
type LoopResult struct {
	// Inputs is the total number of inputs checked (seeds + mutations).
	Inputs int
	// Skipped counts seeds discarded for exceeding the oracle's qubit
	// bound.
	Skipped int
	// Divergences are every classified disagreement found, in discovery
	// order.
	Divergences []Divergence
	// Features maps every feature reached during the run — pipeline passes
	// and planner branches — to its hit count, merged across all inputs.
	Features map[string]uint64
	// BaselineFeatures are the features the seed inputs alone reached.
	BaselineFeatures []string
	// NewFeatures are the features only mutated inputs reached — the
	// loop's evidence that mutation extends coverage beyond the seeds.
	NewFeatures []string
	// Kept are the labels of mutated inputs retained as seeds for reaching
	// a feature no earlier input reached.
	Kept []string
}

// String renders the run report: input and divergence totals, then the
// coverage story.
func (lr *LoopResult) String() string {
	s := fmt.Sprintf("%d inputs checked, %s", lr.Inputs, Summarize(lr.Divergences))
	s += fmt.Sprintf("\nfeatures reached: %d (seeds alone: %d, new via mutation: %d)",
		len(lr.Features), len(lr.BaselineFeatures), len(lr.NewFeatures))
	for _, f := range lr.NewFeatures {
		s += "\n  new: " + f
	}
	if len(lr.Kept) > 0 {
		s += fmt.Sprintf("\nkept %d mutated seeds:", len(lr.Kept))
		for _, k := range lr.Kept {
			s += "\n  " + k
		}
	}
	return s
}

// loopEntry is one live seed of the mutation pool. Spec-backed entries can
// mutate at the spec level; every entry can mutate at the gate level.
type loopEntry struct {
	label string
	c     *circuit.Circuit
	spec  *workload.Spec
}

// RunLoop drives the coverage-guided mutation loop: check every seed under
// a per-input feature probe, then repeatedly mutate a pool entry (spec
// parameters when the ancestor is a forge spec, gate-level edits always),
// keeping any input that reaches a feature no earlier input reached.
// Divergences accumulate across all inputs. Inputs wider than the oracle's
// qubit bound are discarded, not errors.
func (o *Oracle) RunLoop(ctx context.Context, opts LoopOptions) (*LoopResult, error) {
	seeds := opts.Seeds
	if len(seeds) == 0 {
		seeds = workload.SmokeSpecs()
	}
	lr := &LoopResult{Features: map[string]uint64{}}
	global := cover.NewSet()
	var pool []loopEntry

	probe := func(label string, c *circuit.Circuit) (newFeats []string, err error) {
		set := cover.NewSet()
		divs, err := o.Check(cover.With(ctx, set), c, label)
		if err != nil {
			return nil, err
		}
		lr.Inputs++
		lr.Divergences = append(lr.Divergences, divs...)
		newFeats = set.Diff(global)
		global.Merge(set.Counts())
		lr.Features = merge(lr.Features, set.Counts())
		return newFeats, nil
	}

	for _, s := range seeds {
		if err := ctx.Err(); err != nil {
			return lr, err
		}
		spec, err := workload.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("difftest: seed %q: %w", s, err)
		}
		c, err := spec.Generate()
		if err != nil {
			return nil, fmt.Errorf("difftest: seed %q: %w", s, err)
		}
		if c.NumQubits > o.opts.maxQubits() {
			lr.Skipped++
			continue
		}
		if _, err := probe(spec.Canonical(), c); err != nil {
			return lr, err
		}
		pool = append(pool, loopEntry{label: spec.Canonical(), c: c, spec: &spec})
	}
	for i, c := range opts.ExtraSeeds {
		if err := ctx.Err(); err != nil {
			return lr, err
		}
		if c.NumQubits > o.opts.maxQubits() {
			lr.Skipped++
			continue
		}
		label := c.Name
		if label == "" {
			label = fmt.Sprintf("extra-seed-%d", i)
		}
		if _, err := probe(label, c); err != nil {
			return lr, err
		}
		pool = append(pool, loopEntry{label: label, c: c})
	}
	lr.BaselineFeatures = global.Features()

	r := workload.NewRNG(opts.Seed)
	for i := 0; i < opts.Iterations; i++ {
		if err := ctx.Err(); err != nil {
			return lr, err
		}
		if len(pool) == 0 {
			break
		}
		parent := pool[r.Intn(len(pool))]
		var cand *circuit.Circuit
		var candSpec *workload.Spec
		if parent.spec != nil && r.Intn(2) == 0 {
			s := MutateSpec(r, *parent.spec)
			c, err := s.Generate()
			if err != nil {
				continue // mutated spec out of generator's reach; try again
			}
			cand, candSpec = c, &s
		} else {
			cand = MutateCircuit(r, parent.c)
		}
		if cand.NumQubits > o.opts.maxQubits() || len(cand.Gates) == 0 {
			continue
		}
		label := mutLabel(parent.label, i)
		if candSpec != nil {
			label = candSpec.Canonical()
		}
		newFeats, err := probe(label, cand)
		if err != nil {
			return lr, err
		}
		if len(newFeats) > 0 {
			pool = append(pool, loopEntry{label: label, c: cand, spec: candSpec})
			lr.Kept = append(lr.Kept, label)
			lr.NewFeatures = append(lr.NewFeatures, newFeats...)
		}
	}
	sort.Strings(lr.NewFeatures)
	return lr, nil
}

// merge adds src's counts into dst and returns dst.
func merge(dst, src map[string]uint64) map[string]uint64 {
	for k, v := range src {
		dst[k] += v
	}
	return dst
}
