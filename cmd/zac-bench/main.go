// Command zac-bench regenerates the paper's tables and figures as text
// tables (and optionally CSV). Each experiment id matches DESIGN.md's
// per-experiment index. Compilations fan out over a bounded worker pool and
// are memoized in a process-wide cache, so experiments sharing circuits
// (fig8/fig9/fig10/table2) compile each (circuit, compiler) pair once.
//
// With -cachedir the cache gains a persistent disk tier shared with
// zac-serve and zairsim: a second run over the same directory restores
// compilation results instead of recomputing them.
//
// With -cpuprofile/-memprofile the run writes pprof profiles of the whole
// experiment sweep, the easiest way to profile the compiler's hot path over
// realistic workloads (see DESIGN.md, "Performance").
//
// With -compiler the run sweeps the named compiler-registry entries (ZAC
// presets, baselines, SC routers) over the circuit subset instead of
// reproducing a paper experiment.
//
// With -workload the run sweeps workload-forge specs (';'-separated — specs
// contain commas; see -list-workloads for families and schemas) through the
// neutral-atom compilers, the generated counterpart of -experiment
// workloads. Workload specs are also accepted inside -circuits wherever a
// benchmark name is (commas permitting, i.e. single-parameter specs).
//
//	zac-bench -experiment fig8
//	zac-bench -experiment fig9 -circuits bv_n14,ghz_n23
//	zac-bench -compiler zac,enola,nalac -circuits bv_n14,ghz_n23
//	zac-bench -workload 'rb:n=32,depth=20,seed=7;shuffle:n=40,depth=12,seed=3'
//	zac-bench -experiment all -csv out/
//	zac-bench -experiment all -parallel 8 -progress
//	zac-bench -experiment all -cachedir ~/.cache/zac
//	zac-bench -experiment fig12 -nocache -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"zac/internal/experiments"
	"zac/internal/workload"
)

func main() {
	os.Exit(run())
}

// run holds the whole CLI body and reports the exit code; keeping it out of
// main means the deferred CPU/heap profile writers flush even on failed or
// interrupted runs, when a partial profile is most useful.
func run() int {
	exp := flag.String("experiment", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	listWorkloads := flag.Bool("list-workloads", false, "list workload generator families with parameter schemas and exit")
	compilers := flag.String("compiler", "", "comma-separated registry compilers to sweep instead of an experiment (e.g. zac,enola,nalac)")
	workloads := flag.String("workload", "", "';'-separated workload specs to sweep instead of an experiment (e.g. 'rb:n=32,depth=20,seed=7;shuffle:n=40')")
	circuits := flag.String("circuits", "", "comma-separated benchmark subset (default: full suite)")
	csvDir := flag.String("csv", "", "also write CSV files into this directory")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = all CPUs, 1 = sequential)")
	progress := flag.Bool("progress", false, "print one line per completed compilation to stderr")
	noCache := flag.Bool("nocache", false, "disable the compilation cache (recompile shared circuits)")
	saRestarts := flag.Int("sa-restarts", 1, "independent SA initial-placement chains per ZAC compilation, best kept (≥ 1)")
	workers := flag.Int("workers", 0, "intra-compile parallelism budget per compilation (0 = all cores)")
	cacheDir := flag.String("cachedir", "", "persistent compilation-cache directory shared with zac-serve and zairsim")
	cacheMB := flag.Int64("cachemb", 0, "disk cache size bound in MiB (0 = unbounded; needs -cachedir)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: -memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: -memprofile: %v\n", err)
		}
	}()

	if *cacheDir != "" {
		if err := experiments.SetCacheDir(*cacheDir, *cacheMB<<20); err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: -cachedir: %v\n", err)
			return 1
		}
	}

	if *list {
		for _, n := range experiments.Registry() {
			fmt.Println(n)
		}
		return 0
	}
	if *listWorkloads {
		fmt.Print(workload.List())
		return 0
	}

	var subset []string
	if *circuits != "" {
		subset = strings.Split(*circuits, ",")
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Registry()
	}

	if *saRestarts < 1 {
		fmt.Fprintf(os.Stderr, "zac-bench: -sa-restarts must be >= 1, got %d\n", *saRestarts)
		return 1
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "zac-bench: -workers must be >= 0 (0 = all cores), got %d\n", *workers)
		return 1
	}

	cfg := experiments.Config{Parallel: *parallel, NoCache: *noCache, SARestarts: *saRestarts, Workers: *workers}
	if *progress {
		cfg.Progress = func(msg string) { fmt.Fprintln(os.Stderr, "[progress] "+msg) }
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	emit := func(id string, tables []*experiments.Table) error {
		for i, t := range tables {
			fmt.Println(t.Render())
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					return err
				}
				name := fmt.Sprintf("%s_%d.csv", id, i)
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(t.CSV()), 0o644); err != nil {
					return err
				}
			}
		}
		return nil
	}

	if *workloads != "" {
		// Forge sweep: compile the ';'-separated specs through the
		// neutral-atom compilers via the forge experiment. As with
		// -compiler, an explicit -experiment (or a -circuits subset, which
		// the forge sweep would never read) would be silently ignored.
		if *exp != "all" || *compilers != "" || *circuits != "" {
			fmt.Fprintln(os.Stderr, "zac-bench: -workload is mutually exclusive with -experiment, -compiler, and -circuits (the forge sweep replaces them)")
			return 1
		}
		// Validate every spec up front: the forge experiment skips non-spec
		// subset entries (so `-experiment all -circuits …` keeps working),
		// which would silently turn a typo like `rbx:n=32` into an empty
		// sweep with exit 0 at this dedicated entry point.
		var specs []string
		for _, s := range strings.Split(*workloads, ";") {
			if s = strings.TrimSpace(s); s == "" {
				continue
			}
			if _, err := workload.Parse(s); err != nil {
				fmt.Fprintf(os.Stderr, "zac-bench: -workload: %v\n", err)
				return 1
			}
			specs = append(specs, s)
		}
		tables, err := experiments.RunWith(ctx, cfg, "forge", specs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: -workload: %v\n", err)
			return 1
		}
		if err := emit("forge", tables); err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: %v\n", err)
			return 1
		}
		ids = nil
	}

	if *compilers != "" {
		// Registry sweep: compile the subset through the named compilers
		// instead of reproducing a paper experiment. An explicit
		// -experiment alongside it would be silently ignored, so reject
		// the combination outright.
		if *exp != "all" {
			fmt.Fprintln(os.Stderr, "zac-bench: -compiler and -experiment are mutually exclusive (the sweep replaces the experiment run)")
			return 1
		}
		tables, err := experiments.CompilerSweep(ctx, cfg, subset, strings.Split(*compilers, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: -compiler: %v\n", err)
			return 1
		}
		if err := emit("compilers", tables); err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: %v\n", err)
			return 1
		}
		ids = nil
	}

	for _, id := range ids {
		tables, err := experiments.RunWith(ctx, cfg, id, subset)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: %s: %v\n", id, err)
			return 1
		}
		if err := emit(id, tables); err != nil {
			fmt.Fprintf(os.Stderr, "zac-bench: %v\n", err)
			return 1
		}
	}
	if *progress || *cacheDir != "" {
		st := experiments.CacheStats()
		fmt.Fprintf(os.Stderr, "[cache] %d lookups: %d memory hits, %d disk hits, %d misses (%.1f%% hit rate)\n",
			st.Lookups(), st.MemHits, st.DiskHits, st.Misses, 100*st.HitRate())
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "[cache] disk tier %s: %d entries, %d bytes\n",
				*cacheDir, st.Disk.Entries, st.Disk.Bytes)
		}
	}
	fmt.Println("[INFO] Finish Compilation")
	return 0
}
