// Command zairsim loads a ZAIR program (as produced by `zac -out`),
// verifies its physical consistency against an architecture, and reports
// its statistics and fidelity under the paper's model — the consumer-side
// counterpart of the compiler, useful for validating externally generated
// or hand-edited ZAIR programs.
//
//	zairsim -program bv.zair.json
//	zairsim -program bv.zair.json -arch custom_arch.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"zac/internal/arch"
	"zac/internal/core"
	"zac/internal/fidelity"
	"zac/internal/geom"
	"zac/internal/zair"
)

func main() {
	programPath := flag.String("program", "", "ZAIR program JSON file")
	archPath := flag.String("arch", "", "architecture JSON (default: reference architecture)")
	flag.Parse()

	if *programPath == "" {
		fmt.Fprintln(os.Stderr, "zairsim: -program FILE is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*programPath)
	if err != nil {
		fatal(err)
	}
	var prog zair.Program
	if err := json.Unmarshal(data, &prog); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *programPath, err))
	}

	a := arch.Reference()
	if *archPath != "" {
		raw, err := os.ReadFile(*archPath)
		if err != nil {
			fatal(err)
		}
		a = &arch.Architecture{}
		if err := json.Unmarshal(raw, a); err != nil {
			fatal(err)
		}
	}

	v := &zair.Verifier{Resolve: resolver(a)}
	if err := v.Verify(&prog); err != nil {
		fatal(fmt.Errorf("verification failed: %w", err))
	}
	fmt.Println("verification:     OK")

	stats := replayStats(&prog, a)
	b := fidelity.Compute(core.ParamsFromArch(a), stats)
	cs := prog.CountStats()
	fmt.Printf("program:          %s (%d qubits)\n", prog.Name, prog.NumQubits)
	fmt.Printf("instructions:     %d ZAIR (%d 1qGate, %d rydberg, %d jobs), %d machine-level\n",
		prog.NumZAIRInstructions(), cs.OneQGate, cs.Rydberg, cs.RearrangeJobs, cs.MachineInsts)
	fmt.Printf("moved qubits:     %d (%d transfers)\n", cs.MovedQubits, stats.Transfers)
	fmt.Printf("duration:         %.3f ms\n", prog.Duration()/1000)
	fmt.Printf("fidelity:         %.4f (1Q %.4f · 2Q %.4f · transfer %.4f · decoherence %.4f)\n",
		b.Total, b.OneQ, b.TwoQ, b.Transfer, b.Decohere)
}

// replayStats reconstructs fidelity statistics from a ZAIR instruction
// stream. 2Q gate counts come from Rydberg exposures: every pair of qubits
// sharing a Rydberg site when the laser fires counts as one CZ.
func replayStats(p *zair.Program, a *arch.Architecture) fidelity.Stats {
	var st fidelity.Stats
	st.Duration = p.Duration()
	st.Busy = make([]float64, p.NumQubits)

	// Track positions to resolve Rydberg pairings.
	pos := map[int]zair.QLoc{}
	entSLMs := map[int]int{} // slm id → entanglement zone index
	for zi, z := range a.Entanglement {
		for _, s := range z.SLMs {
			entSLMs[s.ID] = zi
		}
	}
	if init, ok := p.Instructions[0].(zair.Init); ok {
		for _, l := range init.Locs {
			pos[l.Q] = l
		}
	}
	for _, inst := range p.Instructions[1:] {
		switch v := inst.(type) {
		case zair.OneQGate:
			for _, l := range v.Locs {
				st.OneQGates++
				st.AddBusy(l.Q, a.Times.OneQGate)
			}
		case zair.Rydberg:
			// Pair qubits by (zone, row, col).
			bySite := map[[3]int][]int{}
			for q, l := range pos {
				zi, ok := entSLMs[l.A]
				if !ok || zi != v.ZoneID {
					continue
				}
				key := [3]int{zi, l.R, l.C}
				bySite[key] = append(bySite[key], q)
			}
			for _, qs := range bySite {
				if len(qs) == 2 {
					st.TwoQGates++
					st.AddBusy(qs[0], a.Times.Rydberg)
					st.AddBusy(qs[1], a.Times.Rydberg)
				} else {
					st.Excited += len(qs)
				}
			}
		case zair.RearrangeJob:
			dur := v.EndTime - v.BeginTime
			for r := range v.EndLocs {
				for _, e := range v.EndLocs[r] {
					pos[e.Q] = e
					st.Transfers += 2
					st.AddBusy(e.Q, dur)
				}
			}
		}
	}
	return st
}

func resolver(a *arch.Architecture) zair.PosResolver {
	return func(slmID, row, col int) (geom.Point, error) {
		for _, zs := range [][]arch.Zone{a.Storage, a.Entanglement} {
			for _, z := range zs {
				for _, s := range z.SLMs {
					if s.ID == slmID && s.InRange(row, col) {
						return s.TrapPos(row, col), nil
					}
				}
			}
		}
		return geom.Point{}, fmt.Errorf("unknown SLM %d trap (%d,%d)", slmID, row, col)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "zairsim: %v\n", err)
	os.Exit(1)
}
