package experiments

import (
	"context"
	"fmt"
	"time"

	"zac/internal/arch"
	"zac/internal/bench"
	"zac/internal/circuit"
	"zac/internal/compiler"
	"zac/internal/core"
	"zac/internal/fidelity"
	"zac/internal/place"
	"zac/internal/resynth"
)

// naResult is the common evaluation shape the experiment tables consume:
// fidelity breakdown, circuit duration, and the wall-clock compile time
// (measured once, at the compilation that populated the cache entry).
type naResult struct {
	breakdown fidelity.Breakdown
	duration  float64 // µs
	compile   time.Duration
}

// toNA projects a unified compiler result onto the table shape.
func toNA(r *core.Result) naResult {
	return naResult{breakdown: r.Breakdown, duration: r.Duration, compile: r.CompileTime}
}

// cachedStaged preprocesses a benchmark (resynthesis to {CZ,U3} + ASAP
// staging) and splits oversized Rydberg stages to the architecture's site
// capacity, through the registry's shared pass-artifact cache: every
// compiler asking for the same shaping reads one instance.
func cachedStaged(cfg Config, b bench.Benchmark, split *arch.Architecture) (*circuit.Staged, error) {
	return cfg.artifacts().Staged(b.Name, split.TotalSites(), func() (*circuit.Staged, error) {
		staged, err := resynth.Preprocess(b.Build())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		return staged, nil
	})
}

// cachedFlat preprocesses a benchmark without stage splitting — the input
// shape of the superconducting routers.
func cachedFlat(cfg Config, b bench.Benchmark) (*circuit.Staged, error) {
	return cfg.artifacts().Staged(b.Name, 0, func() (*circuit.Staged, error) {
		staged, err := resynth.Preprocess(b.Build())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		return staged, nil
	})
}

// cachedZAC compiles a benchmark with a ZAC-family registry compiler under
// the given option preset. optKey must uniquely identify opts — the
// ablation setting name, a sweep configuration label, or "advReuse".
// Results persist to the disk tier as core.Snapshot, so an entry restored
// after a restart has nil Plan and Staged; consumers needing the plan use
// cachedPlan.
func cachedZAC(ctx context.Context, cfg Config, b bench.Benchmark, a *arch.Architecture, optKey string, opts core.Options) (*core.Result, error) {
	key := "zac|" + b.Name + "|arch=" + a.Fingerprint() + "|opt=" + optKey
	if cfg.SARestarts > 1 {
		// Extra restarts change the plan, so they change the result
		// identity; the suffix is conditional to keep existing single-chain
		// cache entries (memory and disk) addressable.
		key += fmt.Sprintf("|sar=%d", cfg.SARestarts)
	}
	return cachedDisk(cfg, key, core.ResultCodec(), func() (*core.Result, error) {
		staged, err := cachedStaged(cfg, b, a)
		if err != nil {
			return nil, err
		}
		zc, err := compiler.Get("zac")
		if err != nil {
			return nil, err
		}
		r, err := zc.Compile(ctx, staged, a, compiler.Options{
			Key: b.Name, Artifacts: cfg.artifacts(), Core: &opts,
			SARestarts: cfg.SARestarts, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("%s/zac: %w", b.Name, err)
		}
		return r, nil
	})
}

// cachedZACNativeCCZ is the native-CCZ variant of cachedZAC: the benchmark
// is preprocessed with PreprocessNativeCCZ and compiled on the three-trap
// architecture.
func cachedZACNativeCCZ(ctx context.Context, cfg Config, b bench.Benchmark, a *arch.Architecture) (*core.Result, error) {
	key := "zacccz|" + b.Name + "|arch=" + a.Fingerprint()
	return cachedDisk(cfg, key, core.ResultCodec(), func() (*core.Result, error) {
		staged, err := cfg.artifacts().Staged("ccz|"+b.Name, a.TotalSites(), func() (*circuit.Staged, error) {
			native, err := resynth.PreprocessNativeCCZ(b.Build())
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
			return native, nil
		})
		if err != nil {
			return nil, err
		}
		zc, err := compiler.Get("zac")
		if err != nil {
			return nil, err
		}
		opts := core.Default()
		r, err := zc.Compile(ctx, staged, a, compiler.Options{
			Key: "ccz|" + b.Name, Artifacts: cfg.artifacts(), Core: &opts,
		})
		if err != nil {
			return nil, fmt.Errorf("%s/zac-ccz: %w", b.Name, err)
		}
		return r, nil
	})
}

// cachedPlan rebuilds (and memoizes, memory-only) the full-ZAC placement
// plan for a benchmark through the same pass-artifact cache the registry's
// zac compiler uses, so a plan computed during compilation is shared here
// and vice versa. It exists for consumers of cachedZAC results that need
// the Plan after a disk-tier restore, where only the core.Snapshot subset
// survives.
func cachedPlan(ctx context.Context, cfg Config, b bench.Benchmark, a *arch.Architecture) (*place.Plan, error) {
	staged, err := cachedStaged(cfg, b, a)
	if err != nil {
		return nil, err
	}
	plan, _, err := cfg.artifacts().Plan(ctx, b.Name, a, staged, core.Default().Place)
	if err != nil {
		return nil, fmt.Errorf("%s/zac-plan: %w", b.Name, err)
	}
	return plan, nil
}

// evalCompiler compiles one benchmark with one registry compiler under the
// paper's evaluation setup: the compiler's default target architecture, and
// staged input split to the zoned reference capacity (the shaping every
// neutral-atom column shares) unless the compiler opts out. ZAC-family
// names route through cachedZAC so their cache entries unify with the
// Fig. 11 ablation study.
func evalCompiler(ctx context.Context, cfg Config, name string, b bench.Benchmark) (naResult, error) {
	c, err := compiler.Get(name)
	if err != nil {
		return naResult{}, err
	}
	if setting, ok := compiler.Setting(c.Name()); ok {
		r, err := cachedZAC(ctx, cfg, b, arch.Reference(), setting, core.OptionsFor(setting))
		if err != nil {
			return naResult{}, err
		}
		return toNA(r), nil
	}
	// StageSplitCap is the registry-wide shaping rule; for the baselines it
	// is exactly the zoned reference capacity cachedStaged splits to, so
	// the staged artifact is shared with the ZAC columns.
	var split *arch.Architecture
	if compiler.StageSplitCap(c) > 0 {
		split = arch.Reference()
	}
	return evalCompilerOn(ctx, cfg, name, b, split, compiler.TargetArch(c))
}

// evalCompilerOn compiles one benchmark with one registry compiler under an
// explicit setup: split is the architecture whose site capacity bounds the
// staged circuit's Rydberg stages (nil = flat, no splitting) and target is
// the architecture compiled for. Results persist to the disk tier as
// core.Snapshot.
func evalCompilerOn(ctx context.Context, cfg Config, name string, b bench.Benchmark, split, target *arch.Architecture) (naResult, error) {
	c, err := compiler.Get(name)
	if err != nil {
		return naResult{}, err
	}
	splitLabel := "none"
	if split != nil {
		splitLabel = split.Fingerprint()
	}
	key := fmt.Sprintf("compile|%s|%s|split=%s|arch=%s", c.Name(), b.Name, splitLabel, target.Fingerprint())
	r, err := cachedDisk(cfg, key, core.ResultCodec(), func() (*core.Result, error) {
		var staged *circuit.Staged
		var err error
		if split != nil {
			staged, err = cachedStaged(cfg, b, split)
		} else {
			staged, err = cachedFlat(cfg, b)
		}
		if err != nil {
			return nil, err
		}
		r, err := c.Compile(ctx, staged, target, compiler.Options{Key: b.Name, Artifacts: cfg.artifacts()})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", b.Name, c.Name(), err)
		}
		return r, nil
	})
	if err != nil {
		return naResult{}, err
	}
	return toNA(r), nil
}

// colCompilers maps the paper's column legends onto registry names.
var colCompilers = map[string]string{
	ColZAC:      "zac",
	ColNALAC:    "nalac",
	ColEnola:    "enola",
	ColAtomique: "atomique",
	ColSCHeron:  "sc-heron",
	ColSCGrid:   "sc-grid",
}

// evalCol evaluates one benchmark under one compiler column — the unit of
// work the experiment runners fan out over the pool. Every column resolves
// through the compiler registry; the four neutral-atom columns share the
// zoned-split staged circuit, exactly as the sequential harness did.
func evalCol(ctx context.Context, cfg Config, col string, b bench.Benchmark) (naResult, error) {
	name, ok := colCompilers[col]
	if !ok {
		return naResult{}, fmt.Errorf("experiments: unknown compiler column %q", col)
	}
	return evalCompiler(ctx, cfg, name, b)
}
