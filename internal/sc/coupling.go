// Package sc implements the superconducting-qubit baselines of the paper's
// evaluation (§VII-A): IBM's 127-qubit heavy-hexagon coupling graph (Heron,
// ibm_torino parameters) and an 11×11 grid coupling graph (Google
// sycamore-style parameters), routed with a SABRE-style swap-insertion
// router and evaluated under the Table I fidelity model.
package sc

import "fmt"

// Coupling is an undirected device connectivity graph.
type Coupling struct {
	Name string
	N    int
	Adj  [][]int
}

func newCoupling(name string, n int) *Coupling {
	return &Coupling{Name: name, N: n, Adj: make([][]int, n)}
}

func (c *Coupling) addEdge(a, b int) {
	if a == b || a < 0 || b < 0 || a >= c.N || b >= c.N {
		panic(fmt.Sprintf("sc: bad edge %d-%d on %s", a, b, c.Name))
	}
	for _, v := range c.Adj[a] {
		if v == b {
			return
		}
	}
	c.Adj[a] = append(c.Adj[a], b)
	c.Adj[b] = append(c.Adj[b], a)
}

// Adjacent reports whether a and b share a coupler.
func (c *Coupling) Adjacent(a, b int) bool {
	for _, v := range c.Adj[a] {
		if v == b {
			return true
		}
	}
	return false
}

// NumEdges counts couplers.
func (c *Coupling) NumEdges() int {
	n := 0
	for _, adj := range c.Adj {
		n += len(adj)
	}
	return n / 2
}

// Grid builds an r×c nearest-neighbor grid coupling.
func Grid(rows, cols int) *Coupling {
	g := newCoupling(fmt.Sprintf("grid_%dx%d", rows, cols), rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.addEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.addEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// HeavyHex127 builds the 127-qubit heavy-hexagon coupling graph used by
// IBM's Eagle/Heron processors: seven horizontal rows of qubits (14, 15,
// 15, 15, 15, 15, 14) joined by six rows of four bridge qubits, with the
// bridge attachment offset alternating between column 0 and column 2.
func HeavyHex127() *Coupling {
	g := newCoupling("heavy_hex_127", 127)
	rowLens := []int{14, 15, 15, 15, 15, 15, 14}
	// Assign indices: row, then its bridge row.
	rowStart := make([]int, len(rowLens))
	bridgeStart := make([]int, len(rowLens)-1)
	idx := 0
	for i, l := range rowLens {
		rowStart[i] = idx
		idx += l
		if i < len(rowLens)-1 {
			bridgeStart[i] = idx
			idx += 4
		}
	}
	if idx != 127 {
		panic("sc: heavy-hex construction error")
	}
	// Row-internal couplers.
	for i, l := range rowLens {
		for k := 0; k+1 < l; k++ {
			g.addEdge(rowStart[i]+k, rowStart[i]+k+1)
		}
	}
	// Bridges: connector j of bridge row i attaches column 4j+offset of the
	// rows above and below, with offset alternating 0, 2, 0, 2, ...
	for i := 0; i < len(rowLens)-1; i++ {
		offset := 0
		if i%2 == 1 {
			offset = 2
		}
		for j := 0; j < 4; j++ {
			col := 4*j + offset
			up := rowStart[i] + minInt(col, rowLens[i]-1)
			down := rowStart[i+1] + minInt(col, rowLens[i+1]-1)
			b := bridgeStart[i] + j
			g.addEdge(b, up)
			g.addEdge(b, down)
		}
	}
	return g
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ShortestPath returns a BFS shortest path from a to b (inclusive), or nil
// if unreachable.
func (c *Coupling) ShortestPath(a, b int) []int {
	if a == b {
		return []int{a}
	}
	prev := make([]int, c.N)
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = a
	queue := []int{a}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range c.Adj[u] {
			if prev[v] != -1 {
				continue
			}
			prev[v] = u
			if v == b {
				var path []int
				for x := b; x != a; x = prev[x] {
					path = append(path, x)
				}
				path = append(path, a)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, v)
		}
	}
	return nil
}

// Connected reports whether the graph is connected.
func (c *Coupling) Connected() bool {
	if c.N == 0 {
		return true
	}
	seen := make([]bool, c.N)
	seen[0] = true
	queue := []int{0}
	count := 1
	for qi := 0; qi < len(queue); qi++ {
		for _, v := range c.Adj[queue[qi]] {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == c.N
}
