package benchsuite

import (
	"errors"
	"fmt"
	"sort"

	"zac/internal/benchsuite/stats"
)

// GateOptions tunes the statistical regression gate.
type GateOptions struct {
	// Alpha is the significance level of the Mann-Whitney test (default
	// 0.05): a slowdown is only real when p < Alpha.
	Alpha float64
	// MinDeltaPct is the practical-significance floor (default 3): a
	// statistically significant median delta below it is reported but not
	// flagged — at benchmark noise levels a 1% "significant" shift is a
	// measurement artifact, not a regression.
	MinDeltaPct float64
	// ThresholdPct is the fallback raw gate (default 20) used when a
	// case's samples are too few or too degenerate for the statistical
	// test (stats.ErrTooFewSamples / stats.ErrAllEqual).
	ThresholdPct float64
	// Confidence is the level of the reported median CIs (default 0.95).
	Confidence float64
	// Cases, when non-empty, restricts the gate to these exact case
	// names; everything else in either record set is ignored.
	Cases []string
}

// normalized fills the options' defaults.
func (o GateOptions) normalized() GateOptions {
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.MinDeltaPct <= 0 {
		o.MinDeltaPct = 3
	}
	if o.ThresholdPct <= 0 {
		o.ThresholdPct = 20
	}
	if o.Confidence <= 0 {
		o.Confidence = 0.95
	}
	return o
}

// Gate modes: how one case's verdict was decided.
const (
	// ModeStats marks a verdict decided by the Mann-Whitney test.
	ModeStats = "stats"
	// ModeThreshold marks the raw-threshold fallback (too few samples).
	ModeThreshold = "threshold"
	// ModeSkipped marks a case the gate could not compare (architecture
	// changed between the two commits, or missing on one side).
	ModeSkipped = "skipped"
)

// Verdict is the gate's decision for one case.
type Verdict struct {
	Case string
	// Mode is ModeStats, ModeThreshold, or ModeSkipped.
	Mode string
	// P is the two-sided p-value (ModeStats only).
	P float64
	// OldMedian and NewMedian are ns/op medians of the two sample sets.
	OldMedian, NewMedian float64
	// DeltaPct is the median change in percent (positive = slower).
	DeltaPct float64
	// OldCI and NewCI are order-statistic median confidence intervals
	// (ModeStats only).
	OldCI, NewCI stats.Interval
	// Regressed reports whether the gate flags this case.
	Regressed bool
	// Improved reports a significant speedup (informational).
	Improved bool
	// Note carries the human-readable reason for fallback/skip verdicts.
	Note string
}

// ErrFingerprintMismatch reports an attempt to gate sample sets measured on
// different machines; such comparisons are meaningless and always refused.
var ErrFingerprintMismatch = errors.New("benchsuite: records span different machine fingerprints")

// Gate compares current against baseline case by case and returns one
// verdict per baseline case, sorted by name. All records on both sides must
// carry the same machine fingerprint — the gate refuses cross-machine
// comparisons outright (ErrFingerprintMismatch) rather than produce a
// number that looks like a measurement.
func Gate(baseline, current []Record, opts GateOptions) ([]Verdict, error) {
	opts = opts.normalized()
	machine := ""
	for _, r := range append(append([]Record{}, baseline...), current...) {
		if machine == "" {
			machine = r.MachineID
		} else if r.MachineID != machine {
			return nil, fmt.Errorf("%w (%s vs %s)", ErrFingerprintMismatch, machine, r.MachineID)
		}
	}
	keep := map[string]bool{}
	for _, c := range opts.Cases {
		keep[c] = true
	}
	type side struct {
		samples []float64
		archFP  string
		procs   int
	}
	collect := func(records []Record) map[string]*side {
		m := map[string]*side{}
		for _, r := range records {
			if len(keep) > 0 && !keep[r.Case] {
				continue
			}
			s, ok := m[r.Case]
			if !ok {
				s = &side{archFP: r.ArchFP, procs: r.Procs}
				m[r.Case] = s
			}
			s.samples = append(s.samples, r.NsPerOp...)
		}
		return m
	}
	olds, news := collect(baseline), collect(current)
	var verdicts []Verdict
	for name, old := range olds {
		v := Verdict{Case: name, OldMedian: stats.Median(old.samples)}
		cur, ok := news[name]
		switch {
		case !ok:
			v.Mode = ModeSkipped
			v.Regressed = true
			v.Note = "present in baseline but missing in current run"
		case cur.archFP != old.archFP:
			v.Mode = ModeSkipped
			v.Note = fmt.Sprintf("architecture fingerprint changed (%s → %s); not comparable", old.archFP, cur.archFP)
		case old.procs != 0 && cur.procs != 0 && old.procs != cur.procs:
			// Same rule as an architecture change: different GOMAXPROCS
			// means a different machine configuration, not a code delta.
			// Records predating the field (0 = unknown) stay comparable.
			v.Mode = ModeSkipped
			v.Note = fmt.Sprintf("gomaxprocs changed (%d → %d); not comparable", old.procs, cur.procs)
		default:
			v = judge(name, old.samples, cur.samples, opts)
		}
		verdicts = append(verdicts, v)
	}
	sort.Slice(verdicts, func(i, j int) bool { return verdicts[i].Case < verdicts[j].Case })
	return verdicts, nil
}

// judge decides one case from its two sample vectors.
func judge(name string, old, cur []float64, opts GateOptions) Verdict {
	v := Verdict{
		Case:      name,
		OldMedian: stats.Median(old),
		NewMedian: stats.Median(cur),
	}
	if v.OldMedian > 0 {
		v.DeltaPct = (v.NewMedian/v.OldMedian - 1) * 100
	}
	res, err := stats.MannWhitneyU(old, cur)
	switch {
	case errors.Is(err, stats.ErrTooFewSamples), errors.Is(err, stats.ErrAllEqual):
		v.Mode = ModeThreshold
		v.Regressed = v.DeltaPct > opts.ThresholdPct
		v.Improved = v.DeltaPct < -opts.ThresholdPct
		v.Note = fmt.Sprintf("statistical test unavailable (%v); raw %.0f%% threshold applied", err, opts.ThresholdPct)
	case err != nil:
		v.Mode = ModeSkipped
		v.Note = err.Error()
	default:
		v.Mode = ModeStats
		v.P = res.P
		v.OldCI, _ = stats.MedianCI(old, opts.Confidence)
		v.NewCI, _ = stats.MedianCI(cur, opts.Confidence)
		significant := res.P < opts.Alpha
		v.Regressed = significant && v.DeltaPct > opts.MinDeltaPct
		v.Improved = significant && v.DeltaPct < -opts.MinDeltaPct
	}
	return v
}

// Regressions counts the flagged verdicts.
func Regressions(verdicts []Verdict) int {
	n := 0
	for _, v := range verdicts {
		if v.Regressed {
			n++
		}
	}
	return n
}

// GateCommits runs the gate over a store: baseline and current name commits
// recorded for machineID ("latest" allowed for current). It is the
// programmatic core of `zac-benchsuite gate`.
func GateCommits(s *Store, machineID, baseline, current string, opts GateOptions) ([]Verdict, error) {
	base, err := s.AtCommit(machineID, baseline)
	if err != nil {
		return nil, err
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("benchsuite: no baseline records for machine %s at commit %q", machineID, baseline)
	}
	cur, err := s.AtCommit(machineID, current)
	if err != nil {
		return nil, err
	}
	if len(cur) == 0 {
		return nil, fmt.Errorf("benchsuite: no current records for machine %s at commit %q", machineID, current)
	}
	return Gate(base, cur, opts)
}
