package matching

import (
	"context"
	"math"

	"zac/internal/engine"
	"zac/internal/telemetry"
)

// minParallelRows is the problem size below which ParallelSolver always runs
// the plain sequential solve: component discovery costs O(n+m+arcs) and tiny
// stages are solved faster than they can be dispatched.
const minParallelRows = 64

// ParallelSolver solves sparse assignment problems by decomposing the
// bipartite candidate graph into connected components and solving the
// components concurrently, each on its own Solver scratch. Placement stages
// are built from k-neighbor candidate lists, so their graphs split into many
// small independent components; solving them in parallel is the ISSUE 9
// treatment of the per-stage JV solves.
//
// Results are bit-identical to Solver.SolveSparse by construction:
//
//   - JV dual potentials never cross components (every alternating path stays
//     inside the component of the row being augmented, and the virtual column
//     0 only feeds back into the current row's potential), so solving a
//     component in isolation runs the exact arithmetic the global solve runs
//     on that component's rows and columns.
//   - Within a component, rows are solved in ascending original order and
//     columns are renumbered ascending by original index, preserving the
//     delta-search tie-break (first strict minimum in ascending column
//     order).
//   - The total is re-summed over rows in ascending global order afterwards,
//     reproducing the sequential finish() float addition order.
//
// The zero value is ready to use. A ParallelSolver owns its scratch and the
// returned assignment slice (valid until the next solve); it must not be
// used concurrently, though internally it fans components out to workers.
type ParallelSolver struct {
	seq     Solver   // fallback + single-component path
	solvers []Solver // per-bucket scratch, index-owned during a solve

	rowTo []int // global assignment, the returned slice

	// Component labeling scratch.
	rowComp, colComp []int
	queue            []int
	colArcStart      []int // column → incident-row adjacency (counting sort)
	colArcRows       []int

	// Per-component sub-problem layout.
	compRowStart []int // rows of comp c: rowsByComp[compRowStart[c]:compRowStart[c+1]]
	rowsByComp   []int // ascending original row order within each component
	compColStart []int // columns of comp c, ascending original order
	colsByComp   []int
	colLocal     []int // original column → its index within its component
	compArcStart []int
	subRowStart  []int // concatenated per-component CSR row starts
	subCols      []int
	subCosts     []float64
	fill         []int // per-component cursors reused across build passes
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// SolveSparse solves the same n×m CSR assignment problem as
// Solver.SolveSparse, fanning independent components out to at most
// engine.Workers(workers) goroutines. The context is checked between
// components, so an abandoned compile stops mid-stage. workers <= 1, small
// problems, and single-component graphs run the sequential solve unchanged.
func (p *ParallelSolver) SolveSparse(ctx context.Context, workers, n, m int, rowStart, cols []int, costs []float64) ([]int, float64, error) {
	if n == 0 {
		return nil, 0, nil
	}
	if n > m {
		return nil, 0, errTooManyRows
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	workers = engine.Workers(workers)
	if workers <= 1 || n < minParallelRows {
		return p.seq.SolveSparse(n, m, rowStart, cols, costs)
	}

	numComp := p.label(n, m, rowStart, cols)
	if numComp == 1 {
		return p.seq.SolveSparse(n, m, rowStart, cols, costs)
	}
	if err := p.layout(n, m, numComp, rowStart, cols, costs); err != nil {
		return nil, 0, err
	}

	ctx, span := telemetry.Start(ctx, "jv.parallel")
	defer span.End()
	span.SetInt("rows", n)
	span.SetInt("components", numComp)

	buckets := workers
	if buckets > numComp {
		buckets = numComp
	}
	span.SetInt("workers", buckets)
	if cap(p.solvers) < buckets {
		p.solvers = make([]Solver, buckets)
	}
	p.solvers = p.solvers[:buckets]
	p.rowTo = growInts(p.rowTo, n)

	err := engine.ForEach(ctx, buckets, buckets, func(b int) error {
		s := &p.solvers[b]
		for c := b; c < numComp; c += buckets {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := p.solveComponent(s, c); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}

	// Re-sum in ascending global row order, exactly like Solver.finish.
	total := 0.0
	for i := 0; i < n; i++ {
		total += costAtSparse(i, p.rowTo[i], rowStart, cols, costs)
	}
	if math.IsInf(total, 1) || math.IsNaN(total) {
		return nil, 0, ErrNoFullMatching
	}
	return p.rowTo, total, nil
}

// label assigns every row and column to a connected component of the
// bipartite candidate graph and returns the component count. Zero-arc rows
// get their own column-less component; layout reports them as deficient.
func (p *ParallelSolver) label(n, m int, rowStart, cols []int) int {
	arcs := rowStart[n]
	p.rowComp = growInts(p.rowComp, n)
	p.colComp = growInts(p.colComp, m)
	for i := range p.rowComp {
		p.rowComp[i] = -1
	}
	for j := range p.colComp {
		p.colComp[j] = -1
	}

	// Column → incident rows, by counting sort over the arc list.
	p.colArcStart = growInts(p.colArcStart, m+1)
	for j := 0; j <= m; j++ {
		p.colArcStart[j] = 0
	}
	for a := 0; a < arcs; a++ {
		p.colArcStart[cols[a]+1]++
	}
	for j := 0; j < m; j++ {
		p.colArcStart[j+1] += p.colArcStart[j]
	}
	p.colArcRows = growInts(p.colArcRows, arcs)
	p.fill = growInts(p.fill, m)
	copy(p.fill, p.colArcStart[:m])
	for i := 0; i < n; i++ {
		for a := rowStart[i]; a < rowStart[i+1]; a++ {
			j := cols[a]
			p.colArcRows[p.fill[j]] = i
			p.fill[j]++
		}
	}

	p.queue = growInts(p.queue, n)
	numComp := 0
	for start := 0; start < n; start++ {
		if p.rowComp[start] >= 0 {
			continue
		}
		c := numComp
		numComp++
		p.rowComp[start] = c
		q := p.queue[:0]
		q = append(q, start)
		for len(q) > 0 {
			i := q[len(q)-1]
			q = q[:len(q)-1]
			for a := rowStart[i]; a < rowStart[i+1]; a++ {
				j := cols[a]
				if p.colComp[j] >= 0 {
					continue
				}
				p.colComp[j] = c
				for ca := p.colArcStart[j]; ca < p.colArcStart[j+1]; ca++ {
					r := p.colArcRows[ca]
					if p.rowComp[r] < 0 {
						p.rowComp[r] = c
						q = append(q, r)
					}
				}
			}
		}
	}
	return numComp
}

// layout builds the per-component sub-problems: row lists (ascending
// original order), column lists (ascending original order, with the local
// renumbering), and one packed CSR per component. It rejects deficient
// components (more rows than columns) up front with the same
// ErrNoFullMatching the sequential solve would reach.
func (p *ParallelSolver) layout(n, m, numComp int, rowStart, cols []int, costs []float64) error {
	arcs := rowStart[n]

	p.compRowStart = growInts(p.compRowStart, numComp+1)
	p.compColStart = growInts(p.compColStart, numComp+1)
	p.compArcStart = growInts(p.compArcStart, numComp+1)
	for c := 0; c <= numComp; c++ {
		p.compRowStart[c] = 0
		p.compColStart[c] = 0
		p.compArcStart[c] = 0
	}
	for i := 0; i < n; i++ {
		c := p.rowComp[i]
		p.compRowStart[c+1]++
		p.compArcStart[c+1] += rowStart[i+1] - rowStart[i]
	}
	for j := 0; j < m; j++ {
		if c := p.colComp[j]; c >= 0 {
			p.compColStart[c+1]++
		}
	}
	for c := 0; c < numComp; c++ {
		if p.compRowStart[c+1] > p.compColStart[c+1] {
			return ErrNoFullMatching
		}
		p.compRowStart[c+1] += p.compRowStart[c]
		p.compColStart[c+1] += p.compColStart[c]
		p.compArcStart[c+1] += p.compArcStart[c]
	}

	// Rows per component, ascending original order.
	p.rowsByComp = growInts(p.rowsByComp, n)
	p.fill = growInts(p.fill, numComp)
	copy(p.fill, p.compRowStart[:numComp])
	for i := 0; i < n; i++ {
		c := p.rowComp[i]
		p.rowsByComp[p.fill[c]] = i
		p.fill[c]++
	}

	// Columns per component, ascending original order; colLocal is the
	// order-preserving renumbering used by the sub-CSRs.
	p.colsByComp = growInts(p.colsByComp, p.compColStart[numComp])
	p.colLocal = growInts(p.colLocal, m)
	copy(p.fill, p.compColStart[:numComp])
	for j := 0; j < m; j++ {
		c := p.colComp[j]
		if c < 0 {
			continue
		}
		p.colLocal[j] = p.fill[c] - p.compColStart[c]
		p.colsByComp[p.fill[c]] = j
		p.fill[c]++
	}

	// One packed CSR per component: rows in ascending original order, arc
	// order within a row preserved, columns renumbered via colLocal.
	p.subRowStart = growInts(p.subRowStart, n+numComp)
	p.subCols = growInts(p.subCols, arcs)
	if cap(p.subCosts) < arcs {
		p.subCosts = make([]float64, arcs)
	}
	p.subCosts = p.subCosts[:arcs]
	for c := 0; c < numComp; c++ {
		rs := p.subRowStartOf(c)
		pos := p.compArcStart[c]
		rs[0] = 0
		for k, end := 0, p.compRowStart[c+1]-p.compRowStart[c]; k < end; k++ {
			i := p.rowsByComp[p.compRowStart[c]+k]
			for a := rowStart[i]; a < rowStart[i+1]; a++ {
				p.subCols[pos] = p.colLocal[cols[a]]
				p.subCosts[pos] = costs[a]
				pos++
			}
			rs[k+1] = pos - p.compArcStart[c]
		}
	}
	return nil
}

// subRowStartOf returns component c's slice of the packed CSR row-start
// buffer (length rows(c)+1).
func (p *ParallelSolver) subRowStartOf(c int) []int {
	off := p.compRowStart[c] + c
	return p.subRowStart[off : off+(p.compRowStart[c+1]-p.compRowStart[c])+1]
}

// solveComponent solves component c on the given per-bucket Solver and
// scatters the assignment back to the global row/column numbering. Distinct
// components write disjoint rowTo entries, so no locking is needed.
func (p *ParallelSolver) solveComponent(s *Solver, c int) error {
	nc := p.compRowStart[c+1] - p.compRowStart[c]
	mc := p.compColStart[c+1] - p.compColStart[c]
	if nc == 0 {
		return nil
	}
	a0, a1 := p.compArcStart[c], p.compArcStart[c+1]
	asg, _, err := s.SolveSparse(nc, mc, p.subRowStartOf(c), p.subCols[a0:a1], p.subCosts[a0:a1])
	if err != nil {
		// Component-local failures surface as the sequential solve's
		// ErrNoFullMatching (deficiency was already rejected in layout).
		return ErrNoFullMatching
	}
	for k := 0; k < nc; k++ {
		i := p.rowsByComp[p.compRowStart[c]+k]
		p.rowTo[i] = p.colsByComp[p.compColStart[c]+asg[k]]
	}
	return nil
}

// costAtSparse is finish()'s per-row cost lookup: a linear scan of row i's
// arcs for column j.
func costAtSparse(i, j int, rowStart, cols []int, costs []float64) float64 {
	for a := rowStart[i]; a < rowStart[i+1]; a++ {
		if cols[a] == j {
			return costs[a]
		}
	}
	return math.Inf(1)
}
